// Package schedule implements CLAP's preemption-bounded candidate-schedule
// generation (§4.3 of the paper).
//
// A candidate schedule is a total order of all SAPs that respects the
// memory-order constraints Fmo (and, optionally, the other hard order
// edges like fork<start). Candidates are then validated against the full
// constraint system — by internal/parsolve in parallel, which is the
// paper's parallel constraint solving algorithm.
//
// Generation is guided by context-switch-point (CSP) sets. A CSP is a
// triple (t1, k, t2): thread t1 is preempted by thread t2 immediately
// before t1's k-th SAP. Enumerating CSP sets of increasing size c and
// generating the schedules consistent with each set explores schedules in
// order of preemption count without duplicates — preemptive switches are
// exactly the CSPs, and non-preemptive switches (the current thread ran
// out of runnable SAPs) are branched exhaustively.
//
// For SC each thread's SAPs form a stack (program order); for TSO/PSO they
// form the per-thread order DAG induced by the relaxed Fmo edges — the
// role the paper's SAP-trees play — and any antichain of ready nodes may
// be scheduled next.
package schedule

import (
	"fmt"

	"repro/internal/constraints"
	"repro/internal/ir"
	"repro/internal/symexec"
	"repro/internal/trace"
)

// CSP is one context-switch point: thread T1 is preempted by T2 right
// before T1's K-th SAP (K indexes the thread's program-order SAP list).
type CSP struct {
	T1 trace.ThreadID
	K  int
	T2 trace.ThreadID
}

// String renders the CSP.
func (c CSP) String() string { return fmt.Sprintf("(t%d,%d,t%d)", c.T1, c.K, c.T2) }

// Options tunes generation.
type Options struct {
	// MaxSchedules caps how many schedules a single Generate call yields
	// (0 means unlimited). When the cap fires the generator reports
	// Capped=true — never silently.
	MaxSchedules int
	// RespectHardEdges makes generation honor every hard order edge (Fmo
	// plus fork/start/exit/join), pruning candidates that could never
	// validate. Disable to reproduce the paper's raw generate counts where
	// only the per-thread memory order guides generation.
	RespectHardEdges bool
	// MaxCSPSets caps how many context-switch-point sets a bounded
	// generation expands (0 = unlimited). Set enumeration grows
	// combinatorially with the bound; hitting the cap reports Capped.
	MaxCSPSets int
	// MaxWalkNodes caps the total walk nodes across the generation
	// (0 = unlimited); a hit reports Capped.
	MaxWalkNodes int
}

// Generator produces candidate schedules for a constraint system. A
// Generator reuses its walk scratch across CSP sets and Generate calls, so
// it is NOT safe for concurrent Generate calls; create one per goroutine
// (the parallel backend runs one generator feeding a validator pool).
type Generator struct {
	sys  *constraints.System
	opts Options

	// perThread is each thread's SAPs in program order.
	perThread [][]constraints.SAPRef
	// intraPreds[r] lists r's order predecessors within its own thread
	// (the per-thread DAG); crossPreds[r] lists predecessors in other
	// threads (only used with RespectHardEdges).
	intraPreds [][]constraints.SAPRef
	crossPreds [][]constraints.SAPRef

	// Walk scratch, reused across CSP sets: a bounded generation expands
	// thousands of sets and allocating per set dominated the generator's
	// profile.
	allCSPs   []CSP
	cspsBuilt bool
	st        genState
	ws        *walkState
	used      []bool
	cspAt     map[[2]int]trace.ThreadID
	// readyBufs are per-depth ready-set buffers for the relaxed walk: slot
	// 2d holds the depth-d ready set being iterated, slot 2d+1 the
	// transient probes of other threads at depth d.
	readyBufs [][]constraints.SAPRef
}

// walkState tracks the semantic gates during a generation walk: mutex
// ownership and signal availability. Without it, a thread blocked at a
// lock acquisition or an unsignaled wake would look "ready", switches
// away from it would be charged as preemptions, and the preemption-bounded
// sweep would miss valid schedules at their true bound.
type walkState struct {
	sys        *constraints.System
	lockHeld   map[ir.SyncID]bool
	signals    map[ir.SyncID]int // scheduled signals per cond
	broadcasts map[ir.SyncID]int
	wakes      map[ir.SyncID]int // consumed wakes per cond
}

func newWalkState(sys *constraints.System) *walkState {
	return &walkState{
		sys:        sys,
		lockHeld:   map[ir.SyncID]bool{},
		signals:    map[ir.SyncID]int{},
		broadcasts: map[ir.SyncID]int{},
		wakes:      map[ir.SyncID]int{},
	}
}

// gateOK reports whether SAP r can execute under the current lock/signal
// state (an approximation of the replay semantics; validation stays
// exact).
func (ws *walkState) gateOK(r constraints.SAPRef) bool {
	s := ws.sys.SAP(r)
	switch s.Kind {
	case symexec.SAPLock:
		return !ws.lockHeld[s.Mutex]
	case symexec.SAPWaitEnd:
		if ws.lockHeld[s.Mutex] {
			return false
		}
		return ws.broadcasts[s.Cond] > 0 || ws.signals[s.Cond] > ws.wakes[s.Cond]
	}
	return true
}

// apply updates the state for scheduling r.
func (ws *walkState) apply(r constraints.SAPRef) {
	s := ws.sys.SAP(r)
	switch s.Kind {
	case symexec.SAPLock:
		ws.lockHeld[s.Mutex] = true
	case symexec.SAPUnlock, symexec.SAPWaitBegin:
		ws.lockHeld[s.Mutex] = false
	case symexec.SAPWaitEnd:
		ws.lockHeld[s.Mutex] = true
		ws.wakes[s.Cond]++
	case symexec.SAPSignal:
		ws.signals[s.Cond]++
	case symexec.SAPBroadcast:
		ws.broadcasts[s.Cond]++
	}
}

// undo reverts apply(r).
func (ws *walkState) undo(r constraints.SAPRef) {
	s := ws.sys.SAP(r)
	switch s.Kind {
	case symexec.SAPLock:
		ws.lockHeld[s.Mutex] = false
	case symexec.SAPUnlock, symexec.SAPWaitBegin:
		ws.lockHeld[s.Mutex] = true
	case symexec.SAPWaitEnd:
		ws.lockHeld[s.Mutex] = false
		ws.wakes[s.Cond]--
	case symexec.SAPSignal:
		ws.signals[s.Cond]--
	case symexec.SAPBroadcast:
		ws.broadcasts[s.Cond]--
	}
}

// Result is the outcome of one generation run.
type Result struct {
	Schedules [][]constraints.SAPRef
	// Generated counts schedules yielded (== len(Schedules) unless a Sink
	// consumed them streaming).
	Generated int
	// Capped reports whether MaxSchedules stopped enumeration early.
	Capped bool
	// CSPSets counts how many context-switch-point sets were expanded.
	CSPSets int
}

// NewGenerator prepares generation for sys.
func NewGenerator(sys *constraints.System, opts Options) *Generator {
	g := &Generator{sys: sys, opts: opts}
	n := len(sys.SAPs)
	g.intraPreds = make([][]constraints.SAPRef, n)
	g.crossPreds = make([][]constraints.SAPRef, n)
	g.perThread = sys.Threads
	for _, e := range sys.HardEdges {
		a, b := e[0], e[1]
		if sys.SAPs[a].Thread == sys.SAPs[b].Thread {
			g.intraPreds[b] = append(g.intraPreds[b], a)
		} else {
			g.crossPreds[b] = append(g.crossPreds[b], a)
		}
	}
	g.ws = newWalkState(sys)
	g.cspAt = map[[2]int]trace.ThreadID{}
	return g
}

// Sink consumes schedules as they are generated; returning false stops
// enumeration (e.g. when a parallel validator already found a solution).
type Sink func(order []constraints.SAPRef, preemptions int) bool

// GenerateWithBound enumerates all schedules with exactly the CSP sets of
// size c, streaming them into sink. It returns the generation statistics.
func (g *Generator) GenerateWithBound(c int, sink Sink) Result {
	res := Result{}
	stop := false
	emit := func(order []constraints.SAPRef, pre int) {
		if stop {
			return
		}
		res.Generated++
		if sink != nil {
			if !sink(order, pre) {
				stop = true
				return
			}
		} else {
			cp := make([]constraints.SAPRef, len(order))
			copy(cp, order)
			res.Schedules = append(res.Schedules, cp)
		}
		if g.opts.MaxSchedules > 0 && res.Generated >= g.opts.MaxSchedules {
			res.Capped = true
			stop = true
		}
	}
	nodes := 0
	g.enumCSPSets(c, func(set []CSP) {
		if stop {
			return
		}
		if g.opts.MaxCSPSets > 0 && res.CSPSets >= g.opts.MaxCSPSets {
			res.Capped = true
			stop = true
			return
		}
		res.CSPSets++
		g.generateForSet(set, emit, &stop, &nodes)
		if g.opts.MaxWalkNodes > 0 && nodes > g.opts.MaxWalkNodes {
			res.Capped = true
			stop = true
		}
	})
	return res
}

// enumCSPSets enumerates all CSP sets of size c. The CSP space is
// (threads × SAP positions × other threads); sets are built in
// lexicographically increasing order to avoid duplicates. The set passed
// to f is a shared buffer valid only for the duration of the call.
func (g *Generator) enumCSPSets(c int, f func(set []CSP)) {
	if !g.cspsBuilt {
		g.cspsBuilt = true
		for t1, refs := range g.perThread {
			for k := 1; k < len(refs); k++ {
				// Preempting before the k-th SAP (k=0 is the thread's first
				// SAP, where a "switch" is not a preemption of anything).
				for t2 := range g.perThread {
					if t1 == t2 {
						continue
					}
					g.allCSPs = append(g.allCSPs, CSP{T1: trace.ThreadID(t1), K: k, T2: trace.ThreadID(t2)})
				}
			}
		}
	}
	all := g.allCSPs
	set := make([]CSP, 0, c)
	var rec func(start int)
	rec = func(start int) {
		if len(set) == c {
			f(set)
			return
		}
		for i := start; i < len(all); i++ {
			set = append(set, all[i])
			rec(i + 1)
			set = set[:len(set)-1]
		}
	}
	rec(0)
}

// Generate enumerates candidate schedules whose preemption count is
// exactly c: the stack-based walk for SC systems, the DAG-based walk for
// TSO/PSO systems. Enumerating c = 0,1,2,… visits every candidate exactly
// once, in order of preemption count — the paper's preemption-bounded
// generation.
func (g *Generator) Generate(c int, sink Sink) Result {
	if g.relaxed() {
		return g.GenerateRelaxed(c, sink)
	}
	return g.GenerateWithBound(c, sink)
}

// relaxed reports whether any thread's intra-thread order is not a total
// chain (i.e. the system was built for TSO/PSO).
func (g *Generator) relaxed() bool {
	for _, refs := range g.perThread {
		for i, r := range refs {
			if i == 0 {
				continue
			}
			chained := false
			for _, p := range g.intraPreds[r] {
				if p == refs[i-1] {
					chained = true
					break
				}
			}
			if !chained {
				return true
			}
		}
	}
	return false
}

// genState is the mutable state of one schedule-generation walk.
type genState struct {
	next      []int // per-thread next SAP index (program order position)
	scheduled []bool
	order     []constraints.SAPRef
	pre       int
}

// reset prepares the state for a system of n SAPs across nt threads.
func (st *genState) reset(nt, n, total int) {
	if cap(st.next) < nt {
		st.next = make([]int, nt)
	}
	st.next = st.next[:nt]
	for i := range st.next {
		st.next[i] = 0
	}
	if cap(st.scheduled) < n {
		st.scheduled = make([]bool, n)
	}
	st.scheduled = st.scheduled[:n]
	for i := range st.scheduled {
		st.scheduled[i] = false
	}
	if cap(st.order) < total {
		st.order = make([]constraints.SAPRef, 0, total)
	}
	st.order = st.order[:0]
	st.pre = 0
}

// generateForSet produces every schedule consistent with the CSP set. The
// walk state lives on the Generator and is reset here, not reallocated:
// apply/undo leave the lock/signal maps balanced back to empty, and the
// dense slices are cleared in place.
func (g *Generator) generateForSet(set []CSP, emit func([]constraints.SAPRef, int), stop *bool, nodes *int) {
	total := 0
	for _, refs := range g.perThread {
		total += len(refs)
	}
	st := &g.st
	st.reset(len(g.perThread), len(g.sys.SAPs), total)
	ws := g.ws
	clear(ws.lockHeld)
	clear(ws.signals)
	clear(ws.broadcasts)
	clear(ws.wakes)
	// cspAt[t][k] = preempting thread, from the set.
	cspAt := g.cspAt
	clear(cspAt)
	for _, c := range set {
		cspAt[[2]int{int(c.T1), c.K}] = c.T2
	}
	if cap(g.used) < len(set) {
		g.used = make([]bool, len(set))
	}
	used := g.used[:len(set)]
	for i := range used {
		used[i] = false
	}
	usedCount := 0
	lastThread := -1 // thread of the most recently emitted SAP
	var run func(cur int)
	// ready reports whether thread t's next SAP can be scheduled now.
	ready := func(t int) bool {
		k := st.next[t]
		if k >= len(g.perThread[t]) {
			return false
		}
		r := g.perThread[t][k]
		for _, p := range g.intraPreds[r] {
			if !st.scheduled[p] {
				return false
			}
		}
		if g.opts.RespectHardEdges {
			for _, p := range g.crossPreds[r] {
				if !st.scheduled[p] {
					return false
				}
			}
		}
		return ws.gateOK(r)
	}
	run = func(cur int) {
		if *stop {
			return
		}
		*nodes++
		if g.opts.MaxWalkNodes > 0 && *nodes > g.opts.MaxWalkNodes {
			*stop = true
			return
		}
		if len(st.order) == total {
			// Emit only when every CSP in the set actually fired, so a
			// schedule is produced exactly once — under the set equal to
			// its true preemption points.
			if usedCount == len(set) {
				emit(st.order, st.pre)
			}
			return
		}
		// Preemption check: does the set demand a switch before cur's next
		// SAP? Every unused CSP matching (cur, next[cur]) is a separate
		// branch (two CSPs at the same point chain in either order). A CSP
		// is a *genuine* preemption only when the thread was actually
		// running (it emitted the previous SAP), could continue, and the
		// preempting thread can run — otherwise the same schedule would
		// also arise from forced switches and be generated twice.
		if lastThread == cur && ready(cur) && st.next[cur] < len(g.perThread[cur]) {
			matched := false
			for i, c := range set {
				if !used[i] && int(c.T1) == cur && c.K == st.next[cur] {
					matched = true
					if !ready(int(c.T2)) {
						continue // the set is infeasible along this branch
					}
					used[i] = true
					usedCount++
					st.pre++
					run(int(c.T2))
					st.pre--
					usedCount--
					used[i] = false
					if *stop {
						return
					}
				}
			}
			if matched {
				return
			}
		}
		if ready(cur) {
			// Take the current thread's next SAP and continue.
			r := g.perThread[cur][st.next[cur]]
			st.next[cur]++
			st.scheduled[r] = true
			st.order = append(st.order, r)
			ws.apply(r)
			prevLast := lastThread
			lastThread = cur
			run(cur)
			lastThread = prevLast
			ws.undo(r)
			st.order = st.order[:len(st.order)-1]
			st.scheduled[r] = false
			st.next[cur]--
			return
		}
		// Non-preemptive switch: the current thread is done or blocked.
		// Branch over every other ready thread.
		any := false
		for t := range g.perThread {
			if t != cur && ready(t) {
				any = true
				run(t)
				if *stop {
					return
				}
			}
		}
		if !any {
			// No thread can proceed: the walk is stuck (the CSP set or the
			// blocked shape is infeasible); abandon this branch.
			return
		}
	}
	// The schedule starts with whichever thread has a ready first SAP —
	// normally the main thread (thread 0 owns the first Start).
	for t := range g.perThread {
		if ready(t) {
			run(t)
			if *stop {
				return
			}
		}
	}
}

// Note on TSO/PSO: the per-thread DAG is encoded in intraPreds, built from
// the model-specific Fmo edges of the constraint system, so the same walk
// handles all three models — the SC "stack" is just the chain DAG. However,
// under TSO/PSO a thread's ready set can contain several SAPs (e.g. a
// delayed write and the next read). The walk above always takes the next
// SAP in program order when ready; to also explore issuing *later* SAPs
// first (a buffered write overtaken by a read), the generator relies on
// the position permutation below.

// GenerateRelaxed enumerates, for TSO/PSO systems, schedules where each
// thread's SAPs may leave program order as far as the per-thread DAG
// allows. It wraps GenerateWithBound by re-linearizing each thread's
// ready set; the extra nondeterminism is explored by branching on which
// ready intra-thread SAP to issue.
func (g *Generator) GenerateRelaxed(c int, sink Sink) Result {
	res := Result{}
	stop := false
	emit := func(order []constraints.SAPRef, pre int) {
		if stop {
			return
		}
		res.Generated++
		if sink != nil {
			if !sink(order, pre) {
				stop = true
				return
			}
		} else {
			cp := make([]constraints.SAPRef, len(order))
			copy(cp, order)
			res.Schedules = append(res.Schedules, cp)
		}
		if g.opts.MaxSchedules > 0 && res.Generated >= g.opts.MaxSchedules {
			res.Capped = true
			stop = true
		}
	}
	total := 0
	for _, refs := range g.perThread {
		total += len(refs)
	}
	st := &g.st
	st.reset(len(g.perThread), len(g.sys.SAPs), total)
	scheduled := st.scheduled
	order := st.order
	ws := g.ws
	clear(ws.lockHeld)
	clear(ws.signals)
	clear(ws.broadcasts)
	clear(ws.wakes)
	// readyInto computes thread t's ready set into the per-depth scratch
	// slot, so the walk allocates nothing per node. The slot being iterated
	// at depth d is 2d; probes of other threads use 2d+1; deeper recursion
	// only touches slots ≥ 2(d+1).
	readyInto := func(t, slot int) []constraints.SAPRef {
		for len(g.readyBufs) <= slot {
			g.readyBufs = append(g.readyBufs, nil)
		}
		out := g.readyBufs[slot][:0]
		for _, r := range g.perThread[t] {
			if scheduled[r] {
				continue
			}
			ok := true
			for _, p := range g.intraPreds[r] {
				if !scheduled[p] {
					ok = false
					break
				}
			}
			if ok && g.opts.RespectHardEdges {
				for _, p := range g.crossPreds[r] {
					if !scheduled[p] {
						ok = false
						break
					}
				}
			}
			if ok && ws.gateOK(r) {
				out = append(out, r)
			}
		}
		g.readyBufs[slot] = out
		return out
	}
	nodes := 0
	var walk func(cur, switches, depth int, justSwitched bool)
	walk = func(cur, switches, depth int, justSwitched bool) {
		if stop {
			return
		}
		nodes++
		if g.opts.MaxWalkNodes > 0 && nodes > g.opts.MaxWalkNodes {
			res.Capped = true
			stop = true
			return
		}
		if len(order) == total {
			// Emit at exactly the requested preemption count so that
			// sweeping c = 0,1,2,… yields each schedule once.
			if switches == c {
				emit(order, switches)
			}
			return
		}
		ready := readyInto(cur, 2*depth)
		if len(ready) > 0 {
			// Stay on the current thread: branch over its ready SAPs.
			for _, r := range ready {
				scheduled[r] = true
				order = append(order, r)
				ws.apply(r)
				walk(cur, switches, depth+1, false)
				ws.undo(r)
				order = order[:len(order)-1]
				scheduled[r] = false
				if stop {
					return
				}
			}
		}
		// Switch (costs one preemption if the current thread still has
		// ready work; otherwise it is forced). A switch must be followed
		// by progress on the target before switching again, or identical
		// schedules would be reached through different switch chains.
		if justSwitched {
			return
		}
		if switches >= c && len(ready) > 0 {
			return
		}
		for t := range g.perThread {
			if t == cur {
				continue
			}
			if len(readyInto(t, 2*depth+1)) == 0 {
				continue
			}
			cost := 0
			if len(ready) > 0 {
				cost = 1
			}
			if switches+cost > c {
				continue
			}
			walk(t, switches+cost, depth+1, true)
			if stop {
				return
			}
		}
	}
	for t := range g.perThread {
		if len(readyInto(t, 0)) > 0 {
			walk(t, 0, 0, true)
			if stop {
				break
			}
		}
	}
	return res
}
