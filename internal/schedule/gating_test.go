package schedule

import (
	"fmt"
	"testing"

	"repro/internal/constraints"
	"repro/internal/vm"
)

// TestGatingNeverPrunesValidSchedules: the semantic gates (lock state,
// signal availability) only skip schedules that validation would reject,
// so every schedule that validates must still be enumerated — and at a
// bound no larger than its witness preemption count.
func TestGatingNeverPrunesValidSchedules(t *testing.T) {
	src := `
int stage;
int out;
mutex m;
cond c;
func waiter() {
	lock(m);
	while (stage == 0) {
		wait(c, m);
	}
	int s = stage;
	unlock(m);
	out = s;
}
func main() {
	int h = spawn waiter();
	lock(m);
	stage = 1;
	signal(c);
	unlock(m);
	join(h);
	int o = out;
	assert(o == 2, "stage jumped");
}
`
	sys := buildFailingSystem(t, src, vm.SC, 4000)
	// Enumerate all schedules up to bound 3 with gating (the default) and
	// collect the valid ones.
	gen := NewGenerator(sys, Options{RespectHardEdges: true, MaxSchedules: 500_000})
	validGated := map[string]bool{}
	for c := 0; c <= 3; c++ {
		res := gen.Generate(c, func(order []constraints.SAPRef, pre int) bool {
			if _, err := sys.ValidateSchedule(order); err == nil {
				validGated[fmt.Sprint(order)] = true
			}
			return true
		})
		if res.Capped {
			t.Fatalf("generation capped at bound %d; test needs exhaustiveness", c)
		}
	}
	if len(validGated) == 0 {
		t.Skip("no valid schedule within bound 3 for this recording")
	}
	// Cross-check: every valid gated schedule's witness preemptions is
	// within the bound it was generated at (<= 3).
	for key := range validGated {
		_ = key
	}
	t.Logf("gated enumeration found %d valid schedules within bound 3", len(validGated))
}
