package replay_test

import (
	"strings"
	"testing"

	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/solver"
	"repro/internal/vm"
)

func solveOne(t *testing.T, src string, model vm.MemModel) (*core.Recording, *constraints.System, *solver.Solution) {
	t.Helper()
	prog, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := core.Record(prog, core.RecordOptions{Model: model, SeedLimit: 4000})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rec.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := solver.Solve(sys, solver.Options{MaxPreemptions: -1})
	if err != nil {
		t.Fatal(err)
	}
	return rec, sys, sol
}

const figure2SC = `
int x;
int y;
func t1() {
	int r1 = x;
	x = r1 + 1;
	int r2 = y;
	if (r2 > 0) {
		int r3 = x;
		assert(r3 > 0, "assert1");
	}
}
func main() {
	int h;
	h = spawn t1();
	x = 2;
	x = x - 3;
	y = 1;
	join(h);
}
`

func TestOrderEnforcedVerifiesEvents(t *testing.T) {
	rec, sys, sol := solveOne(t, figure2SC, vm.SC)
	out, err := replay.Run(sys, sol, replay.Options{Mode: replay.OrderEnforced, Inputs: rec.Inputs})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reproduced {
		t.Fatal("not reproduced")
	}
	if out.EventsMatched < len(sol.Order)-2 {
		t.Errorf("only %d of %d events verified", out.EventsMatched, len(sol.Order))
	}
	if out.Failure == nil || out.Failure.Kind != vm.FailAssert {
		t.Errorf("failure = %v", out.Failure)
	}
}

func TestValueInjectedAlsoWorksOnSC(t *testing.T) {
	rec, sys, sol := solveOne(t, figure2SC, vm.SC)
	out, err := replay.Run(sys, sol, replay.Options{Mode: replay.ValueInjected, Inputs: rec.Inputs})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reproduced {
		t.Fatal("value-injected replay must also reproduce SC bugs")
	}
}

func TestCorruptedScheduleDetected(t *testing.T) {
	rec, sys, sol := solveOne(t, figure2SC, vm.SC)
	// Swap two SAPs of the same thread: the replayed event order then
	// contradicts the expectations and the replayer must report it rather
	// than silently diverge.
	bad := *sol
	bad.Order = append([]constraints.SAPRef(nil), sol.Order...)
	var i1, i2 = -1, -1
	for i, ref := range bad.Order {
		if sys.SAP(ref).Thread == 0 {
			if i1 == -1 {
				i1 = i
			} else {
				i2 = i
				break
			}
		}
	}
	bad.Order[i1], bad.Order[i2] = bad.Order[i2], bad.Order[i1]
	_, err := replay.Run(sys, &bad, replay.Options{Mode: replay.OrderEnforced, Inputs: rec.Inputs})
	if err == nil {
		t.Fatal("corrupted schedule must be detected")
	}
	if !strings.Contains(err.Error(), "replay") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestModeForAndString(t *testing.T) {
	if replay.ModeFor(vm.SC) != replay.OrderEnforced {
		t.Error("SC must use order-enforced replay")
	}
	if replay.ModeFor(vm.TSO) != replay.ValueInjected || replay.ModeFor(vm.PSO) != replay.ValueInjected {
		t.Error("relaxed models must use value injection")
	}
	if replay.OrderEnforced.String() != "order-enforced" || replay.ValueInjected.String() != "value-injected" {
		t.Error("mode strings wrong")
	}
}

func TestReplayDeterministicAcrossRuns(t *testing.T) {
	rec, sys, sol := solveOne(t, figure2SC, vm.SC)
	for i := 0; i < 5; i++ {
		out, err := replay.Run(sys, sol, replay.Options{Mode: replay.OrderEnforced, Inputs: rec.Inputs})
		if err != nil || !out.Reproduced {
			t.Fatalf("run %d: err=%v reproduced=%v", i, err, out != nil && out.Reproduced)
		}
	}
}
