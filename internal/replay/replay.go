// Package replay deterministically re-executes a program along a computed
// bug-reproducing schedule, playing the role of the paper's Tinertia-based
// application-level thread scheduler: "whenever a thread is going to
// execute a SAP, we first check the schedule to decide whether it is the
// correct turn for the thread to continue execution".
//
// Two modes:
//
//   - OrderEnforced (SC schedules): the replay scheduler grants each thread
//     exactly its turns in the computed SAP order; shared memory then
//     produces the witness's read values by construction, which the
//     replayer verifies event by event.
//
//   - ValueInjected (TSO/PSO schedules): a relaxed-memory order can place
//     a thread's writes out of program order, which no program-order
//     executor can act out directly; instead the replayer enforces the
//     schedule's synchronization order and injects every shared read's
//     witness value — the same "actively controlling the value returned by
//     shared data loads" the paper uses for its relaxed-memory bugs. The
//     thread-local paths and the failing assertion are exactly those of
//     the witness.
//
// In both modes the replay succeeds only if the recorded assertion fails
// again at the same site in the same (logical) thread.
package replay

import (
	"context"
	"fmt"
	"time"

	"repro/internal/constraints"
	"repro/internal/ir"
	"repro/internal/solver"
	"repro/internal/symbolic"
	"repro/internal/symexec"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Mode selects the replay strategy.
type Mode uint8

// Replay modes.
const (
	// OrderEnforced replays the full SAP order (sound for SC schedules).
	OrderEnforced Mode = iota
	// ValueInjected enforces sync order and injects read values (sound for
	// TSO/PSO schedules, also works for SC).
	ValueInjected
)

// String names the mode.
func (m Mode) String() string {
	if m == OrderEnforced {
		return "order-enforced"
	}
	return "value-injected"
}

// ModeFor returns the appropriate mode for the memory model a schedule was
// computed under.
func ModeFor(model vm.MemModel) Mode {
	if model == vm.SC {
		return OrderEnforced
	}
	return ValueInjected
}

// Options tunes a replay.
type Options struct {
	Mode Mode
	// Inputs are the recorded run's deterministic inputs.
	Inputs []int64
	// MaxActions bounds the scheduler loop.
	MaxActions int
	// Deadline bounds the replay's wall time (0 = none): a replay of a bad
	// schedule must fail with a diagnosis, never spin past its budget.
	Deadline time.Duration
	// Ctx cancels the replay between scheduling decisions (nil = never).
	Ctx context.Context
	// Capture collects the replay's visible events into Outcome.Events —
	// the replay lane of the flight-recorder timeline.
	Capture bool
}

// Outcome reports a replay.
type Outcome struct {
	// Reproduced is true when the recorded assertion failed again.
	Reproduced bool
	// Failure is the replayed failure (nil if the run completed cleanly —
	// a replay bug).
	Failure *vm.Failure
	// EventsMatched counts schedule events verified.
	EventsMatched int
	// Events is the replay's visible-event capture (Options.Capture only).
	Events []vm.VisibleEvent
}

// Run replays sol's schedule.
func Run(sys *constraints.System, sol *solver.Solution, opts Options) (*Outcome, error) {
	r := &replayer{
		sys:     sys,
		sol:     sol,
		mode:    opts.Mode,
		ctx:     opts.Ctx,
		capture: opts.Capture,
		r2p:     map[trace.ThreadID]vm.ThreadID{0: 0},
		p2r:     map[vm.ThreadID]trace.ThreadID{0: 0},
	}
	if opts.Deadline > 0 {
		r.deadline = time.Now().Add(opts.Deadline)
	}
	r.init()
	conf := vm.Config{
		Model:      vm.SC, // replay executes with plain memory; relaxation is encoded in the schedule/values
		Inputs:     opts.Inputs,
		MaxActions: opts.MaxActions,
		Sched:      r,
		Shared:     sys.An.Shared,
		OnVisible:  r.onVisible,
		PickWaiter: r.pickWaiter,
	}
	if r.mode == ValueInjected {
		conf.ReadValue = r.readValue
	}
	machine, err := vm.New(sys.An.Prog, conf)
	if err != nil {
		return nil, err
	}
	res, err := machine.Run()
	if r.err != nil {
		// The replayer's own diagnosis (schedule mismatch, divergence) is
		// more precise than the VM's scheduler-abort error.
		return nil, r.err
	}
	if err != nil {
		return nil, err
	}
	out := &Outcome{Failure: res.Failure, EventsMatched: r.matched, Events: r.events}
	if res.Failure != nil && res.Failure.Kind == vm.FailAssert {
		// The failing thread must be the recorded bug thread (modulo the
		// replay/recorded id mapping).
		if rec, ok := r.p2r[res.Failure.Thread]; ok && rec == sys.An.BugThread {
			out.Reproduced = true
		}
	}
	return out, nil
}

// replayer implements vm.Scheduler and the verification hooks.
type replayer struct {
	sys  *constraints.System
	sol  *solver.Solution
	mode Mode

	// order is the enforced SAP sequence: the full order (OrderEnforced)
	// or its synchronization subsequence (ValueInjected).
	order []constraints.SAPRef
	idx   int
	// posOf maps SAPRef to its position in the full order (for waiter
	// selection).
	posOf []int

	// Thread id mappings between the recorded analysis and the replay run.
	r2p map[trace.ThreadID]vm.ThreadID
	p2r map[vm.ThreadID]trace.ThreadID
	// keyToRecorded resolves (recorded parent, spawn index) to the
	// recorded child id.
	keyToRecorded map[vm.ThreadKey]trace.ThreadID
	// spawnCount counts spawns per replay thread.
	spawnCount map[vm.ThreadID]int32

	// nextSeq is each recorded thread's next expected SAP (program order).
	nextSeq []int

	// bugThread is the recorded failing thread; after its last scheduled
	// SAP the scheduler grants it one extra turn to reach the assertion.
	lastBugSAP constraints.SAPRef
	bugPending bool

	matched int
	err     error

	capture bool
	events  []vm.VisibleEvent

	// Deadline guard: picks counts scheduling decisions so the wall clock
	// is only polled on a stride.
	deadline time.Time
	ctx      context.Context
	picks    int
}

func (r *replayer) init() {
	full := r.sol.Order
	r.posOf = make([]int, len(r.sys.SAPs))
	for i, ref := range full {
		r.posOf[ref] = i
	}
	if r.mode == OrderEnforced {
		r.order = full
	} else {
		for _, ref := range full {
			if r.sys.SAP(ref).Kind.IsSync() {
				r.order = append(r.order, ref)
			}
		}
	}
	r.keyToRecorded = map[vm.ThreadKey]trace.ThreadID{}
	for _, tt := range r.sys.An.Threads {
		if tt.Parent >= 0 {
			r.keyToRecorded[vm.ThreadKey{Parent: tt.Parent, Index: tt.Index}] = tt.Thread
		}
	}
	r.spawnCount = map[vm.ThreadID]int32{}
	r.nextSeq = make([]int, len(r.sys.Threads))
	// Find the bug thread's last scheduled SAP.
	r.lastBugSAP = -1
	for _, ref := range full {
		if r.sys.SAP(ref).Thread == r.sys.An.BugThread {
			r.lastBugSAP = ref
		}
	}
	if r.lastBugSAP == -1 {
		// The bug thread has no SAP at all (a pure-local failing thread);
		// grant it the extra run immediately.
		r.bugPending = true
	}
}

func (r *replayer) fail(format string, args ...any) int {
	if r.err == nil {
		r.err = fmt.Errorf("replay: "+format, args...)
	}
	return -1 // invalid index aborts the VM loop with an error
}

// Pick implements vm.Scheduler.
func (r *replayer) Pick(v *vm.VM, actions []vm.Action) int {
	r.picks++
	if r.picks&255 == 0 {
		if r.ctx != nil {
			select {
			case <-r.ctx.Done():
				return r.fail("cancelled after %d events (%v)", r.matched, r.ctx.Err())
			default:
			}
		}
		if !r.deadline.IsZero() && time.Now().After(r.deadline) {
			return r.fail("deadline exceeded after %d events", r.matched)
		}
	}
	var target vm.ThreadID
	switch {
	case r.bugPending:
		pt, ok := r.r2p[r.sys.An.BugThread]
		if !ok {
			return r.fail("bug thread %d never spawned", r.sys.An.BugThread)
		}
		target = pt
	case r.idx < len(r.order):
		ref := r.order[r.idx]
		s := r.sys.SAP(ref)
		pt, ok := r.r2p[s.Thread]
		if !ok {
			return r.fail("schedule needs thread %d before it was spawned (at %s)", s.Thread, s)
		}
		target = pt
	default:
		// All scheduled SAPs done: drive the bug thread through its
		// trailing local instructions to the failing assertion.
		pt, ok := r.r2p[r.sys.An.BugThread]
		if !ok {
			return r.fail("schedule exhausted and bug thread %d never spawned", r.sys.An.BugThread)
		}
		target = pt
	}
	for i, a := range actions {
		if a.Kind == vm.ActRun && a.Thread == target {
			return i
		}
	}
	return r.fail("thread %d (replay id %d) cannot run at its scheduled turn", r.p2r[target], target)
}

// onVisible verifies each executed event against the schedule and advances
// the cursors.
func (r *replayer) onVisible(ev vm.VisibleEvent) {
	if r.err != nil {
		return
	}
	if r.capture {
		r.events = append(r.events, ev)
	}
	rec, ok := r.p2r[ev.Thread]
	if !ok {
		r.err = fmt.Errorf("replay: event from unmapped thread %d", ev.Thread)
		return
	}
	refs := r.sys.Threads[rec]
	if r.nextSeq[rec] >= len(refs) {
		// The bug thread may legitimately be mid extra turn; anything else
		// running past its recorded trace is a divergence.
		if rec != r.sys.An.BugThread {
			r.err = fmt.Errorf("replay: thread %d ran past its recorded trace (%s)", rec, ev)
		}
		return
	}
	expect := r.sys.SAP(refs[r.nextSeq[rec]])
	if err := r.matchEvent(expect, ev); err != nil {
		r.err = err
		return
	}
	r.nextSeq[rec]++
	r.matched++

	// Spawn events extend the thread mapping.
	if ev.Kind == vm.EvSpawn {
		k := vm.ThreadKey{Parent: rec, Index: r.spawnCount[ev.Thread]}
		r.spawnCount[ev.Thread]++
		recChild, ok := r.keyToRecorded[k]
		if !ok {
			r.err = fmt.Errorf("replay: spawn of unknown recorded thread (parent %d index %d)", k.Parent, k.Index)
			return
		}
		r.r2p[recChild] = ev.Other
		r.p2r[ev.Other] = recChild
	}

	// Advance the schedule cursor when this event was the scheduled one.
	if r.idx < len(r.order) {
		ref := r.order[r.idx]
		if r.sys.SAP(ref) == expect {
			r.idx++
		}
	}
	if r.lastBugSAP >= 0 && refs[r.nextSeq[rec]-1] == r.lastBugSAP {
		r.bugPending = true
	}
}

var eventKindOf = map[symexec.SAPKind]vm.EventKind{
	symexec.SAPStart: vm.EvStart, symexec.SAPExit: vm.EvExit,
	symexec.SAPRead: vm.EvRead, symexec.SAPWrite: vm.EvWrite,
	symexec.SAPLock: vm.EvLock, symexec.SAPUnlock: vm.EvUnlock,
	symexec.SAPWaitBegin: vm.EvWaitBegin, symexec.SAPWaitEnd: vm.EvWaitEnd,
	symexec.SAPSignal: vm.EvSignal, symexec.SAPBroadcast: vm.EvBroadcast,
	symexec.SAPFork: vm.EvSpawn, symexec.SAPJoin: vm.EvJoin,
	symexec.SAPYield: vm.EvYield, symexec.SAPFence: vm.EvFence,
}

// matchEvent checks that a VM event is the expected SAP.
func (r *replayer) matchEvent(expect *symexec.SAP, ev vm.VisibleEvent) error {
	if want := eventKindOf[expect.Kind]; want != ev.Kind {
		return fmt.Errorf("replay: thread %d expected %s, executed %s", expect.Thread, expect, ev)
	}
	switch expect.Kind {
	case symexec.SAPRead, symexec.SAPWrite:
		wantAddr, err := r.addrOf(expect)
		if err != nil {
			return err
		}
		if wantAddr != ev.Addr {
			return fmt.Errorf("replay: %s touched address %d, schedule says %d", ev, ev.Addr, wantAddr)
		}
		// Value checks: reads must see the witness value; writes must
		// produce the witness-computed value.
		var want int64
		if expect.Kind == symexec.SAPRead {
			want = r.sol.Witness.Env[expect.Sym.ID]
		} else {
			v, err := symbolic.EvalInt(expect.Val, r.sol.Witness.Env)
			if err != nil {
				return fmt.Errorf("replay: write value of %s: %v", expect, err)
			}
			want = v
		}
		if ev.Value != want {
			return fmt.Errorf("replay: %s carried value %d, witness says %d", ev, ev.Value, want)
		}
	}
	return nil
}

// addrOf resolves a SAP's flat address under the witness.
func (r *replayer) addrOf(s *symexec.SAP) (int, error) {
	if s.Addr != symexec.NoAddr {
		return s.Addr, nil
	}
	idx, err := symbolic.EvalInt(s.AddrIndex, r.sol.Witness.Env)
	if err != nil {
		return 0, fmt.Errorf("replay: address of %s: %v", s, err)
	}
	a, ok := r.sys.Layout.Addr(r.sys.An.Prog, s.Var, idx)
	if !ok {
		return 0, fmt.Errorf("replay: address of %s out of bounds", s)
	}
	return a, nil
}

// readValue injects witness read values (ValueInjected mode).
func (r *replayer) readValue(t vm.ThreadID, addr int) (int64, bool) {
	rec, ok := r.p2r[t]
	if !ok {
		return 0, false
	}
	refs := r.sys.Threads[rec]
	if r.nextSeq[rec] >= len(refs) {
		return 0, false
	}
	expect := r.sys.SAP(refs[r.nextSeq[rec]])
	if expect.Kind != symexec.SAPRead {
		return 0, false
	}
	v, ok := r.sol.Witness.Env[expect.Sym.ID]
	return v, ok
}

// pickWaiter chooses the waiter whose wake comes first in the schedule.
func (r *replayer) pickWaiter(c ir.SyncID, waiters []vm.ThreadID) vm.ThreadID {
	best := waiters[0]
	bestPos := 1 << 30
	for _, w := range waiters {
		rec, ok := r.p2r[w]
		if !ok {
			continue
		}
		refs := r.sys.Threads[rec]
		for k := r.nextSeq[rec]; k < len(refs); k++ {
			s := r.sys.SAP(refs[k])
			if s.Kind == symexec.SAPWaitEnd && s.Cond == c {
				if p := r.posOf[refs[k]]; p < bestPos {
					bestPos = p
					best = w
				}
				break
			}
		}
	}
	return best
}
