package minic

import (
	"fmt"
	"strings"
)

// Lexer tokenizes mini-language source. It supports // line comments and
// /* */ block comments, decimal and 0x hexadecimal integer literals, and
// double-quoted strings (used only in assert messages).
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex scans the whole input and returns the token stream terminated by a
// TokEOF token.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) errf(format string, args ...any) error {
	return &Error{Pos: Pos{Line: lx.line, Col: lx.col}, Msg: fmt.Sprintf(format, args...)}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := Pos{Line: lx.line, Col: lx.col}
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return &Error{Pos: start, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || ('a' <= c && c <= 'f') || ('A' <= c && c <= 'F')
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := Pos{Line: lx.line, Col: lx.col}
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isLetter(c):
		start := lx.off
		for lx.off < len(lx.src) && (isLetter(lx.peek()) || isDigit(lx.peek())) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	case isDigit(c):
		start := lx.off
		if c == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
			lx.advance()
			lx.advance()
			if !isHexDigit(lx.peek()) {
				return Token{}, lx.errf("malformed hexadecimal literal")
			}
			for lx.off < len(lx.src) && isHexDigit(lx.peek()) {
				lx.advance()
			}
		} else {
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		if lx.off < len(lx.src) && isLetter(lx.peek()) {
			return Token{}, lx.errf("malformed number literal")
		}
		return Token{Kind: TokNumber, Text: lx.src[start:lx.off], Pos: pos}, nil
	case c == '"':
		lx.advance()
		var sb strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return Token{}, &Error{Pos: pos, Msg: "unterminated string literal"}
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if lx.off >= len(lx.src) {
					return Token{}, &Error{Pos: pos, Msg: "unterminated escape"}
				}
				esc := lx.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\', '"':
					sb.WriteByte(esc)
				default:
					return Token{}, lx.errf("unknown escape \\%c", esc)
				}
				continue
			}
			if ch == '\n' {
				return Token{}, &Error{Pos: pos, Msg: "newline in string literal"}
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: TokString, Text: sb.String(), Pos: pos}, nil
	}
	// Operators and punctuation.
	two := func(kind TokKind) (Token, error) {
		lx.advance()
		lx.advance()
		return Token{Kind: kind, Pos: pos}, nil
	}
	one := func(kind TokKind) (Token, error) {
		lx.advance()
		return Token{Kind: kind, Pos: pos}, nil
	}
	switch c {
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	case '[':
		return one(TokLBracket)
	case ']':
		return one(TokRBracket)
	case ',':
		return one(TokComma)
	case ';':
		return one(TokSemi)
	case '+':
		return one(TokPlus)
	case '-':
		return one(TokMinus)
	case '*':
		return one(TokStar)
	case '/':
		return one(TokSlash)
	case '%':
		return one(TokPercent)
	case '^':
		return one(TokCaret)
	case '&':
		if lx.peek2() == '&' {
			return two(TokAndAnd)
		}
		return one(TokAmp)
	case '|':
		if lx.peek2() == '|' {
			return two(TokOrOr)
		}
		return one(TokPipe)
	case '=':
		if lx.peek2() == '=' {
			return two(TokEq)
		}
		return one(TokAssign)
	case '!':
		if lx.peek2() == '=' {
			return two(TokNe)
		}
		return one(TokBang)
	case '<':
		if lx.peek2() == '=' {
			return two(TokLe)
		}
		if lx.peek2() == '<' {
			return two(TokShl)
		}
		return one(TokLt)
	case '>':
		if lx.peek2() == '=' {
			return two(TokGe)
		}
		if lx.peek2() == '>' {
			return two(TokShr)
		}
		return one(TokGt)
	}
	return Token{}, lx.errf("unexpected character %q", string(c))
}
