package minic

import "fmt"

// Program is a parsed mini-language compilation unit.
type Program struct {
	Globals []*GlobalDecl
	Mutexes []*SyncDecl
	Conds   []*SyncDecl
	Funcs   []*FuncDecl
}

// Func returns the function named name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// GlobalDecl declares a global integer scalar or array. Globals are the
// candidate shared memory locations; internal/escape decides which are
// actually thread-shared.
type GlobalDecl struct {
	Name string
	// Size is 0 for a scalar, otherwise the array length.
	Size int
	// Init is the initial value (scalars) or the value every element starts
	// with (arrays). The language only allows constant initializers.
	Init int64
	Pos  Pos
}

// SyncDecl declares a mutex or condition variable.
type SyncDecl struct {
	Name string
	Pos  Pos
}

// FuncDecl is a function definition. All parameters and return values are
// 64-bit integers.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *BlockStmt
	Pos    Pos
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	// StmtPos returns the statement's source position.
	StmtPos() Pos
}

// Expr is an expression node.
type Expr interface {
	exprNode()
	// ExprPos returns the expression's source position.
	ExprPos() Pos
}

// Statements.

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// VarDeclStmt declares a thread-local integer variable, optionally
// initialized.
type VarDeclStmt struct {
	Name string
	Init Expr // may be nil
	Pos  Pos
}

// AssignStmt assigns to a local, a global scalar, or a global array element.
type AssignStmt struct {
	// Target is the assigned name.
	Target string
	// Index is non-nil for array element assignment.
	Index Expr
	Value Expr
	Pos   Pos
}

// IfStmt is a conditional with an optional else branch.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
	Pos  Pos
}

// WhileStmt is a pre-tested loop.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Pos  Pos
}

// ForStmt is the C-style three-clause loop. Init and Post are optional
// assignments, Cond is an optional expression (defaults to true).
type ForStmt struct {
	Init *AssignStmt // may be nil
	Cond Expr        // may be nil
	Post *AssignStmt // may be nil
	Body *BlockStmt
	Pos  Pos
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Value Expr // may be nil (returns 0)
	Pos   Pos
}

// AssertStmt checks a predicate at runtime; a violation is the bug CLAP
// reproduces (the paper's Fbug predicate is extracted from the failing
// assertion).
type AssertStmt struct {
	Cond Expr
	Msg  string
	Pos  Pos
}

// ExprStmt evaluates an expression for effect (calls, sync operations).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (*BlockStmt) stmtNode()   {}
func (*VarDeclStmt) stmtNode() {}
func (*AssignStmt) stmtNode()  {}
func (*IfStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()   {}
func (*ForStmt) stmtNode()     {}
func (*ReturnStmt) stmtNode()  {}
func (*AssertStmt) stmtNode()  {}
func (*ExprStmt) stmtNode()    {}

// StmtPos implementations.

// StmtPos returns the block's opening brace position.
func (s *BlockStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the declaration position.
func (s *VarDeclStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the assignment position.
func (s *AssignStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the if keyword position.
func (s *IfStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the while keyword position.
func (s *WhileStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the for keyword position.
func (s *ForStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the return keyword position.
func (s *ReturnStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the assert keyword position.
func (s *AssertStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the expression position.
func (s *ExprStmt) StmtPos() Pos { return s.Pos }

// Expressions.

// NumberLit is an integer literal.
type NumberLit struct {
	Value int64
	Pos   Pos
}

// BoolLit is true or false (usable in conditions).
type BoolLit struct {
	Value bool
	Pos   Pos
}

// Ident references a local variable, parameter, or global scalar.
type Ident struct {
	Name string
	Pos  Pos
}

// IndexExpr reads a global array element.
type IndexExpr struct {
	Name  string
	Index Expr
	Pos   Pos
}

// UnaryExpr applies - or !.
type UnaryExpr struct {
	Op  TokKind // TokMinus or TokBang
	X   Expr
	Pos Pos
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   TokKind
	X, Y Expr
	Pos  Pos
}

// CallExpr calls a user function or a builtin. Builtins are the concurrency
// primitives (lock, unlock, wait, signal, broadcast, join, yield, fence) and
// utility functions (print, input). Spawn has its own node.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

// SpawnExpr starts a new thread running the named function with the given
// arguments; it evaluates to the thread handle.
type SpawnExpr struct {
	Func string
	Args []Expr
	Pos  Pos
}

func (*NumberLit) exprNode()  {}
func (*BoolLit) exprNode()    {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CallExpr) exprNode()   {}
func (*SpawnExpr) exprNode()  {}

// ExprPos implementations.

// ExprPos returns the literal position.
func (e *NumberLit) ExprPos() Pos { return e.Pos }

// ExprPos returns the literal position.
func (e *BoolLit) ExprPos() Pos { return e.Pos }

// ExprPos returns the identifier position.
func (e *Ident) ExprPos() Pos { return e.Pos }

// ExprPos returns the array name position.
func (e *IndexExpr) ExprPos() Pos { return e.Pos }

// ExprPos returns the operator position.
func (e *UnaryExpr) ExprPos() Pos { return e.Pos }

// ExprPos returns the operator position.
func (e *BinaryExpr) ExprPos() Pos { return e.Pos }

// ExprPos returns the callee position.
func (e *CallExpr) ExprPos() Pos { return e.Pos }

// ExprPos returns the spawn keyword position.
func (e *SpawnExpr) ExprPos() Pos { return e.Pos }

// Builtins is the set of builtin function names with their arities.
// join takes a thread handle; wait takes (cond, mutex) following PThreads.
var Builtins = map[string]int{
	"lock":      1,
	"unlock":    1,
	"wait":      2,
	"signal":    1,
	"broadcast": 1,
	"join":      1,
	"yield":     0,
	"fence":     0,
	"print":     1,
	"input":     1, // input(k): the k-th deterministic program input
}

// IsBuiltin reports whether name is a builtin.
func IsBuiltin(name string) bool {
	_, ok := Builtins[name]
	return ok
}

// String renders the expression in source form (diagnostics only).
func exprString(e Expr) string {
	switch x := e.(type) {
	case *NumberLit:
		return fmt.Sprintf("%d", x.Value)
	case *BoolLit:
		return fmt.Sprintf("%t", x.Value)
	case *Ident:
		return x.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", x.Name, exprString(x.Index))
	case *UnaryExpr:
		return fmt.Sprintf("%s%s", x.Op, exprString(x.X))
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", exprString(x.X), x.Op, exprString(x.Y))
	case *CallExpr:
		s := x.Name + "("
		for i, a := range x.Args {
			if i > 0 {
				s += ", "
			}
			s += exprString(a)
		}
		return s + ")"
	case *SpawnExpr:
		s := "spawn " + x.Func + "("
		for i, a := range x.Args {
			if i > 0 {
				s += ", "
			}
			s += exprString(a)
		}
		return s + ")"
	}
	return "?"
}
