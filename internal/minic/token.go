package minic

import "fmt"

// TokKind classifies a lexical token.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString

	// Keywords.
	TokInt
	TokMutex
	TokCond
	TokFunc
	TokIf
	TokElse
	TokWhile
	TokFor
	TokReturn
	TokAssert
	TokSpawn
	TokTrue
	TokFalse

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi
	TokAssign
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokPipe
	TokCaret
	TokShl
	TokShr
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokAndAnd
	TokOrOr
	TokBang
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokNumber: "number", TokString: "string",
	TokInt: "int", TokMutex: "mutex", TokCond: "cond", TokFunc: "func",
	TokIf: "if", TokElse: "else", TokWhile: "while", TokFor: "for",
	TokReturn: "return", TokAssert: "assert", TokSpawn: "spawn",
	TokTrue: "true", TokFalse: "false",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokComma: ",", TokSemi: ";",
	TokAssign: "=", TokPlus: "+", TokMinus: "-", TokStar: "*",
	TokSlash: "/", TokPercent: "%", TokAmp: "&", TokPipe: "|",
	TokCaret: "^", TokShl: "<<", TokShr: ">>", TokEq: "==", TokNe: "!=",
	TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokAndAnd: "&&", TokOrOr: "||", TokBang: "!",
}

// String returns a printable name for the token kind.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", uint8(k))
}

var keywords = map[string]TokKind{
	"int": TokInt, "mutex": TokMutex, "cond": TokCond, "func": TokFunc,
	"if": TokIf, "else": TokElse, "while": TokWhile, "for": TokFor,
	"return": TokReturn, "assert": TokAssert, "spawn": TokSpawn,
	"true": TokTrue, "false": TokFalse,
}

// Pos is a source position, 1-based.
type Pos struct {
	Line, Col int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string // identifier spelling, number literal, or string contents
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokNumber:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	case TokString:
		return fmt.Sprintf("string %q", t.Text)
	}
	return t.Kind.String()
}

// Error is a lexing or parsing error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("minic: %s: %s", e.Pos, e.Msg) }
