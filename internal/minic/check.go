package minic

import "fmt"

// Check performs the static well-formedness checks the later pipeline
// stages rely on: unique declarations, resolved names, correct builtin
// arities, arrays indexed and scalars not, sync primitives applied to
// declared mutexes/conds, and a main function with no parameters.
func Check(p *Program) error {
	c := &checker{
		prog:    p,
		globals: map[string]*GlobalDecl{},
		mutexes: map[string]bool{},
		conds:   map[string]bool{},
		funcs:   map[string]*FuncDecl{},
	}
	for _, g := range p.Globals {
		if c.defined(g.Name) {
			return &Error{Pos: g.Pos, Msg: fmt.Sprintf("duplicate declaration of %q", g.Name)}
		}
		c.globals[g.Name] = g
	}
	for _, m := range p.Mutexes {
		if c.defined(m.Name) {
			return &Error{Pos: m.Pos, Msg: fmt.Sprintf("duplicate declaration of %q", m.Name)}
		}
		c.mutexes[m.Name] = true
	}
	for _, cd := range p.Conds {
		if c.defined(cd.Name) {
			return &Error{Pos: cd.Pos, Msg: fmt.Sprintf("duplicate declaration of %q", cd.Name)}
		}
		c.conds[cd.Name] = true
	}
	for _, f := range p.Funcs {
		if c.defined(f.Name) || IsBuiltin(f.Name) {
			return &Error{Pos: f.Pos, Msg: fmt.Sprintf("duplicate declaration of %q", f.Name)}
		}
		c.funcs[f.Name] = f
	}
	mainFn, ok := c.funcs["main"]
	if !ok {
		return &Error{Msg: "program has no main function"}
	}
	if len(mainFn.Params) != 0 {
		return &Error{Pos: mainFn.Pos, Msg: "main must take no parameters"}
	}
	for _, f := range p.Funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	prog    *Program
	globals map[string]*GlobalDecl
	mutexes map[string]bool
	conds   map[string]bool
	funcs   map[string]*FuncDecl
}

func (c *checker) defined(name string) bool {
	if _, ok := c.globals[name]; ok {
		return true
	}
	if _, ok := c.funcs[name]; ok {
		return true
	}
	return c.mutexes[name] || c.conds[name]
}

// scope tracks local variables with lexical shadowing of globals.
type scope struct {
	parent *scope
	names  map[string]bool
}

func (s *scope) lookup(name string) bool {
	for sc := s; sc != nil; sc = sc.parent {
		if sc.names[name] {
			return true
		}
	}
	return false
}

func (c *checker) checkFunc(f *FuncDecl) error {
	sc := &scope{names: map[string]bool{}}
	for _, p := range f.Params {
		if sc.names[p] {
			return &Error{Pos: f.Pos, Msg: fmt.Sprintf("duplicate parameter %q in %s", p, f.Name)}
		}
		sc.names[p] = true
	}
	return c.checkBlock(f.Body, sc)
}

func (c *checker) checkBlock(b *BlockStmt, parent *scope) error {
	sc := &scope{parent: parent, names: map[string]bool{}}
	for _, s := range b.Stmts {
		if err := c.checkStmt(s, sc); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt, sc *scope) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.checkBlock(st, sc)
	case *VarDeclStmt:
		if st.Init != nil {
			if err := c.checkExpr(st.Init, sc); err != nil {
				return err
			}
		}
		if sc.names[st.Name] {
			return &Error{Pos: st.Pos, Msg: fmt.Sprintf("duplicate local %q", st.Name)}
		}
		if c.mutexes[st.Name] || c.conds[st.Name] {
			return &Error{Pos: st.Pos, Msg: fmt.Sprintf("local %q shadows a sync object", st.Name)}
		}
		sc.names[st.Name] = true
		return nil
	case *AssignStmt:
		return c.checkAssign(st, sc)
	case *IfStmt:
		if err := c.checkExpr(st.Cond, sc); err != nil {
			return err
		}
		if err := c.checkBlock(st.Then, sc); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else, sc)
		}
		return nil
	case *WhileStmt:
		if err := c.checkExpr(st.Cond, sc); err != nil {
			return err
		}
		return c.checkBlock(st.Body, sc)
	case *ForStmt:
		if st.Init != nil {
			if err := c.checkAssign(st.Init, sc); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.checkExpr(st.Cond, sc); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.checkAssign(st.Post, sc); err != nil {
				return err
			}
		}
		return c.checkBlock(st.Body, sc)
	case *ReturnStmt:
		if st.Value != nil {
			return c.checkExpr(st.Value, sc)
		}
		return nil
	case *AssertStmt:
		return c.checkExpr(st.Cond, sc)
	case *ExprStmt:
		return c.checkExpr(st.X, sc)
	}
	return &Error{Msg: "unknown statement kind"}
}

func (c *checker) checkAssign(a *AssignStmt, sc *scope) error {
	if a.Index != nil {
		g, ok := c.globals[a.Target]
		if !ok || g.Size == 0 {
			return &Error{Pos: a.Pos, Msg: fmt.Sprintf("%q is not a global array", a.Target)}
		}
		if err := c.checkExpr(a.Index, sc); err != nil {
			return err
		}
	} else {
		if !sc.lookup(a.Target) {
			g, ok := c.globals[a.Target]
			if !ok {
				return &Error{Pos: a.Pos, Msg: fmt.Sprintf("assignment to undeclared %q", a.Target)}
			}
			if g.Size != 0 {
				return &Error{Pos: a.Pos, Msg: fmt.Sprintf("cannot assign to array %q without an index", a.Target)}
			}
		}
	}
	return c.checkExpr(a.Value, sc)
}

func (c *checker) checkExpr(e Expr, sc *scope) error {
	switch x := e.(type) {
	case *NumberLit, *BoolLit:
		return nil
	case *Ident:
		if sc.lookup(x.Name) {
			return nil
		}
		if g, ok := c.globals[x.Name]; ok {
			if g.Size != 0 {
				return &Error{Pos: x.Pos, Msg: fmt.Sprintf("array %q used without an index", x.Name)}
			}
			return nil
		}
		return &Error{Pos: x.Pos, Msg: fmt.Sprintf("undeclared identifier %q", x.Name)}
	case *IndexExpr:
		g, ok := c.globals[x.Name]
		if !ok || g.Size == 0 {
			return &Error{Pos: x.Pos, Msg: fmt.Sprintf("%q is not a global array", x.Name)}
		}
		return c.checkExpr(x.Index, sc)
	case *UnaryExpr:
		return c.checkExpr(x.X, sc)
	case *BinaryExpr:
		if err := c.checkExpr(x.X, sc); err != nil {
			return err
		}
		return c.checkExpr(x.Y, sc)
	case *SpawnExpr:
		f, ok := c.funcs[x.Func]
		if !ok {
			return &Error{Pos: x.Pos, Msg: fmt.Sprintf("spawn of undeclared function %q", x.Func)}
		}
		if len(x.Args) != len(f.Params) {
			return &Error{Pos: x.Pos, Msg: fmt.Sprintf("spawn %s: %d args, want %d", x.Func, len(x.Args), len(f.Params))}
		}
		for _, a := range x.Args {
			if err := c.checkExpr(a, sc); err != nil {
				return err
			}
		}
		return nil
	case *CallExpr:
		if arity, ok := Builtins[x.Name]; ok {
			if len(x.Args) != arity {
				return &Error{Pos: x.Pos, Msg: fmt.Sprintf("%s: %d args, want %d", x.Name, len(x.Args), arity)}
			}
			return c.checkBuiltinArgs(x, sc)
		}
		f, ok := c.funcs[x.Name]
		if !ok {
			return &Error{Pos: x.Pos, Msg: fmt.Sprintf("call of undeclared function %q", x.Name)}
		}
		if len(x.Args) != len(f.Params) {
			return &Error{Pos: x.Pos, Msg: fmt.Sprintf("%s: %d args, want %d", x.Name, len(x.Args), len(f.Params))}
		}
		for _, a := range x.Args {
			if err := c.checkExpr(a, sc); err != nil {
				return err
			}
		}
		return nil
	}
	return &Error{Msg: "unknown expression kind"}
}

// checkBuiltinArgs enforces that sync builtins name declared sync objects.
func (c *checker) checkBuiltinArgs(x *CallExpr, sc *scope) error {
	wantMutex := func(e Expr) error {
		id, ok := e.(*Ident)
		if !ok || !c.mutexes[id.Name] {
			return &Error{Pos: e.ExprPos(), Msg: fmt.Sprintf("%s requires a declared mutex", x.Name)}
		}
		return nil
	}
	wantCond := func(e Expr) error {
		id, ok := e.(*Ident)
		if !ok || !c.conds[id.Name] {
			return &Error{Pos: e.ExprPos(), Msg: fmt.Sprintf("%s requires a declared cond", x.Name)}
		}
		return nil
	}
	switch x.Name {
	case "lock", "unlock":
		return wantMutex(x.Args[0])
	case "wait":
		if err := wantCond(x.Args[0]); err != nil {
			return err
		}
		return wantMutex(x.Args[1])
	case "signal", "broadcast":
		return wantCond(x.Args[0])
	case "join", "print", "input":
		return c.checkExpr(x.Args[0], sc)
	case "yield", "fence":
		return nil
	}
	return nil
}
