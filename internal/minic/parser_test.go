package minic

import (
	"strings"
	"testing"
)

const figure2Src = `
// Figure 2 of the paper: two threads, two shared variables.
int x = 0;
int y = 0;

func thread1() {
	int t1;
	t1 = x;
	x = t1 + 1;
	int t2;
	t2 = y;
	if (t2 > 0) {
		int t3;
		t3 = x;
		assert(t3 > 0, "assert1");
	}
}

func main() {
	int h;
	h = spawn thread1();
	x = 2;
	y = 1;
	join(h);
}
`

func TestParseFigure2(t *testing.T) {
	p, err := Parse(figure2Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Globals) != 2 {
		t.Fatalf("globals = %d, want 2", len(p.Globals))
	}
	if len(p.Funcs) != 2 {
		t.Fatalf("funcs = %d, want 2", len(p.Funcs))
	}
	if p.Func("main") == nil || p.Func("thread1") == nil {
		t.Fatal("missing function")
	}
	if p.Func("nothere") != nil {
		t.Fatal("Func must return nil for unknown names")
	}
}

func TestParseAllFeatures(t *testing.T) {
	src := `
int g = -5;
int buf[8];
mutex m;
cond full;

func producer(n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		lock(m);
		buf[i % 8] = i * 2;
		signal(full);
		unlock(m);
	}
	return i;
}

func consumer(n) {
	int i = 0;
	while (i < n) {
		lock(m);
		wait(full, m);
		int v;
		v = buf[i % 8];
		unlock(m);
		if (v >= 0 && v % 2 == 0) {
			i = i + 1;
		} else {
			if (v < 0) {
				yield();
			} else {
				fence();
			}
		}
	}
	broadcast(full);
}

func main() {
	int h1;
	int h2;
	h1 = spawn producer(4);
	h2 = spawn consumer(4);
	print(g);
	join(h1);
	join(h2);
	assert(g == -5);
	int z;
	z = input(0);
	z = (1 << 3) >> 1 | 2 & 3 ^ 1;
	z = -z + !0;
}
`
	// !0 is a type error at runtime, not parse time; replace to stay valid.
	src = strings.Replace(src, "z = -z + !0;", "z = -z;", 1)
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseHexAndComments(t *testing.T) {
	src := `
int x = 0x10; /* block
comment */
func main() {
	// line comment
	x = 0xff;
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Globals[0].Init != 16 {
		t.Errorf("hex init = %d, want 16", p.Globals[0].Init)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no main", `int x;`, "no main"},
		{"main with params", `func main(a) {}`, "main must take no parameters"},
		{"undeclared ident", `func main() { int a; a = b; }`, "undeclared identifier"},
		{"undeclared assign", `func main() { q = 1; }`, "undeclared"},
		{"dup global", "int x;\nint x;\nfunc main() {}", "duplicate"},
		{"dup local", `func main() { int a; int a; }`, "duplicate local"},
		{"dup param", `func f(a, a) {} func main() {}`, "duplicate parameter"},
		{"array no index", `int a[4]; func main() { int t; t = a; }`, "without an index"},
		{"index scalar", `int s; func main() { int t; t = s[0]; }`, "not a global array"},
		{"assign array whole", `int a[4]; func main() { a = 1; }`, "without an index"},
		{"lock non-mutex", `int x; func main() { lock(x); }`, "requires a declared mutex"},
		{"wait non-cond", `mutex m; func main() { wait(m, m); }`, "requires a declared cond"},
		{"signal non-cond", `mutex m; func main() { signal(m); }`, "requires a declared cond"},
		{"bad arity builtin", `mutex m; func main() { lock(m, m); }`, "want 1"},
		{"call undeclared", `func main() { nope(); }`, "undeclared function"},
		{"call bad arity", `func f(a) {} func main() { f(); }`, "0 args, want 1"},
		{"spawn undeclared", `func main() { int h; h = spawn nope(); }`, "undeclared function"},
		{"spawn bad arity", `func f(a) {} func main() { int h; h = spawn f(); }`, "0 args, want 1"},
		{"zero array", `int a[0]; func main() {}`, "positive"},
		{"unterminated string", `func main() { assert(true, "oops); }`, "unterminated"},
		{"unterminated comment", `/* func main() {}`, "unterminated block comment"},
		{"bad char", `func main() { @ }`, "unexpected character"},
		{"bad number", `func main() { int a = 12abc; }`, "malformed number"},
		{"missing semi", `func main() { int a = 1 }`, "expected ;"},
		{"eof in block", `func main() { int a = 1;`, "unexpected EOF"},
		{"shadow sync", `mutex m; func main() { int m; }`, "shadows a sync object"},
		{"redeclare builtin", `func print(a) {} func main() {}`, "duplicate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestPrecedence(t *testing.T) {
	src := `int x; func main() { x = 1 + 2 * 3; x = 1 < 2 == 3 < 4; }`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := p.Func("main").Body.Stmts
	a1 := body[0].(*AssignStmt)
	b1 := a1.Value.(*BinaryExpr)
	if b1.Op != TokPlus {
		t.Fatalf("1+2*3 must parse with + at the root, got %s", b1.Op)
	}
	if inner := b1.Y.(*BinaryExpr); inner.Op != TokStar {
		t.Fatalf("2*3 must be the right child, got %s", inner.Op)
	}
	a2 := body[1].(*AssignStmt)
	b2 := a2.Value.(*BinaryExpr)
	if b2.Op != TokEq {
		t.Fatalf("1<2 == 3<4 must have == at root, got %s", b2.Op)
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
int x;
func main() {
	if (x == 0) { x = 1; } else if (x == 1) { x = 2; } else { x = 3; }
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := p.Func("main").Body.Stmts[0].(*IfStmt)
	if _, ok := ifs.Else.(*IfStmt); !ok {
		t.Fatal("else-if must parse as nested IfStmt")
	}
}

func TestNegativeGlobalInit(t *testing.T) {
	p, err := Parse(`int x = -7; func main() {}`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Globals[0].Init != -7 {
		t.Fatalf("init = %d, want -7", p.Globals[0].Init)
	}
}

func TestExprString(t *testing.T) {
	src := `int a[4]; func f(p) {} func main() { int h; h = spawn f(a[1] + -2); print(h); }`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	spawn := p.Func("main").Body.Stmts[1].(*AssignStmt).Value
	if s := exprString(spawn); !strings.Contains(s, "spawn f(") {
		t.Errorf("exprString(spawn) = %q", s)
	}
	call := p.Func("main").Body.Stmts[2].(*ExprStmt).X
	if s := exprString(call); s != "print(h)" {
		t.Errorf("exprString(call) = %q", s)
	}
}

func TestTokenStrings(t *testing.T) {
	toks, err := Lex(`x == 3 "hi"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].String() == "" || toks[1].String() == "" || toks[3].String() == "" {
		t.Error("tokens must render")
	}
	if toks[3].Kind != TokString || toks[3].Text != "hi" {
		t.Errorf("string token = %+v", toks[3])
	}
}

func TestStringEscapes(t *testing.T) {
	toks, err := Lex(`"a\n\t\\\""`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a\n\t\\\"" {
		t.Errorf("escaped string = %q", toks[0].Text)
	}
	if _, err := Lex(`"\q"`); err == nil {
		t.Error("unknown escape must error")
	}
}

func TestForLoopClausesOptional(t *testing.T) {
	src := `
int x;
func main() {
	int i = 0;
	for (;;) {
		i = i + 1;
		if (i > 3) { return; }
	}
}
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}
