// Package minic implements the mini concurrent C-like language that plays
// the role of the paper's instrumented C/C++ programs.
//
// The language is deliberately small but covers everything CLAP's analysis
// needs: shared global scalars and arrays, thread-local variables, the
// full integer expression set, structured control flow, and the
// PThreads-shaped concurrency primitives the paper instruments —
// spawn/join, mutex lock/unlock, condition wait/signal/broadcast, and
// yield. Programs are parsed to an AST (this package), lowered to a
// CFG-based IR (internal/ir), and executed by the VM (internal/vm).
//
// Grammar (EBNF; terminals quoted):
//
//	program    = { decl } ;
//	decl       = globalDecl | mutexDecl | condDecl | funcDecl ;
//	globalDecl = "int" ident [ "[" number "]" ] [ "=" [ "-" ] number ] ";" ;
//	mutexDecl  = "mutex" ident ";" ;
//	condDecl   = "cond" ident ";" ;
//	funcDecl   = "func" ident "(" [ ident { "," ident } ] ")" block ;
//
//	block      = "{" { stmt } "}" ;
//	stmt       = block | varDecl | assign | ifStmt | whileStmt | forStmt
//	           | returnStmt | assertStmt | exprStmt ;
//	varDecl    = "int" ident [ "=" expr ] ";" ;
//	assign     = ident [ "[" expr "]" ] "=" expr ";" ;
//	ifStmt     = "if" "(" expr ")" block [ "else" ( block | ifStmt ) ] ;
//	whileStmt  = "while" "(" expr ")" block ;
//	forStmt    = "for" "(" [ simpleAssign ] ";" [ expr ] ";"
//	             [ simpleAssign ] ")" block ;
//	returnStmt = "return" [ expr ] ";" ;
//	assertStmt = "assert" "(" expr [ "," string ] ")" ";" ;
//	exprStmt   = call ";" ;
//
//	expr       = binary expression over the operators below, with C-like
//	             precedence (low to high):
//	             "||"  "&&"  "|"  "^"  "&"  "==" "!="
//	             "<" "<=" ">" ">="  "<<" ">>"  "+" "-"  "*" "/" "%"
//	             and unary "-" "!" ;
//	primary    = number | "true" | "false" | ident
//	           | ident "[" expr "]" | call | spawn | "(" expr ")" ;
//	call       = ident "(" [ expr { "," expr } ] ")" ;
//	spawn      = "spawn" ident "(" [ expr { "," expr } ] ")" ;
//
// Builtins (and arities): lock(m), unlock(m), wait(c, m), signal(c),
// broadcast(c), join(handle), yield(), fence(), print(v), input(k).
//
// Semantics in brief: all values are 64-bit integers; booleans exist only
// as the results of comparisons/logical operators and as branch/assert
// conditions (mixing them with integers is a runtime error). Globals are
// the only memory — locals live in registers. spawn starts a thread
// running the named function and evaluates to its handle; join blocks
// until that thread returns. && and || short-circuit (they lower to
// control flow, so each contributes a recorded branch decision).
package minic
