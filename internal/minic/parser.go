package minic

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser with single-token lookahead over the
// pre-lexed token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a complete program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return Token{}, p.errf("expected %s, found %s", k, p.cur())
}

func (p *Parser) errf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for !p.at(TokEOF) {
		switch p.cur().Kind {
		case TokInt:
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case TokMutex:
			d, err := p.parseSyncDecl(TokMutex)
			if err != nil {
				return nil, err
			}
			prog.Mutexes = append(prog.Mutexes, d)
		case TokCond:
			d, err := p.parseSyncDecl(TokCond)
			if err != nil {
				return nil, err
			}
			prog.Conds = append(prog.Conds, d)
		case TokFunc:
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, p.errf("expected declaration, found %s", p.cur())
		}
	}
	return prog, nil
}

func (p *Parser) parseGlobal() (*GlobalDecl, error) {
	kw, _ := p.expect(TokInt)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Name: name.Text, Pos: kw.Pos}
	if p.accept(TokLBracket) {
		sz, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(sz.Text, 0, 64)
		if err != nil || n <= 0 {
			return nil, &Error{Pos: sz.Pos, Msg: "array size must be a positive integer"}
		}
		g.Size = int(n)
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	if p.accept(TokAssign) {
		neg := p.accept(TokMinus)
		v, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(v.Text, 0, 64)
		if err != nil {
			return nil, &Error{Pos: v.Pos, Msg: "malformed initializer"}
		}
		if neg {
			n = -n
		}
		g.Init = n
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *Parser) parseSyncDecl(kw TokKind) (*SyncDecl, error) {
	k, _ := p.expect(kw)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &SyncDecl{Name: name.Text, Pos: k.Pos}, nil
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	kw, _ := p.expect(TokFunc)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	f := &FuncDecl{Name: name.Text, Pos: kw.Pos}
	if !p.at(TokRParen) {
		for {
			id, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			f.Params = append(f.Params, id.Text)
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: lb.Pos}
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // consume }
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokInt:
		return p.parseVarDecl()
	case TokIf:
		return p.parseIf()
	case TokWhile:
		return p.parseWhile()
	case TokFor:
		return p.parseFor()
	case TokReturn:
		return p.parseReturn()
	case TokAssert:
		return p.parseAssert()
	case TokIdent:
		return p.parseAssignOrCall()
	default:
		return nil, p.errf("expected statement, found %s", p.cur())
	}
}

func (p *Parser) parseVarDecl() (Stmt, error) {
	kw, _ := p.expect(TokInt)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &VarDeclStmt{Name: name.Text, Pos: kw.Pos}
	if p.accept(TokAssign) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	kw, _ := p.expect(TokIf)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then, Pos: kw.Pos}
	if p.accept(TokElse) {
		if p.at(TokIf) {
			els, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = els
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
	}
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	kw, _ := p.expect(TokWhile)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: kw.Pos}, nil
}

// parseSimpleAssign parses "name = expr" or "name[idx] = expr" without the
// trailing semicolon; used in for-clauses.
func (p *Parser) parseSimpleAssign() (*AssignStmt, error) {
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	a := &AssignStmt{Target: name.Text, Pos: name.Pos}
	if p.accept(TokLBracket) {
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		a.Index = idx
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	a.Value = v
	return a, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	kw, _ := p.expect(TokFor)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos: kw.Pos}
	if !p.at(TokSemi) {
		init, err := p.parseSimpleAssign()
		if err != nil {
			return nil, err
		}
		s.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.at(TokSemi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.at(TokRParen) {
		post, err := p.parseSimpleAssign()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

func (p *Parser) parseReturn() (Stmt, error) {
	kw, _ := p.expect(TokReturn)
	s := &ReturnStmt{Pos: kw.Pos}
	if !p.at(TokSemi) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Value = e
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *Parser) parseAssert() (Stmt, error) {
	kw, _ := p.expect(TokAssert)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	s := &AssertStmt{Cond: cond, Pos: kw.Pos}
	if p.accept(TokComma) {
		msg, err := p.expect(TokString)
		if err != nil {
			return nil, err
		}
		s.Msg = msg.Text
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *Parser) parseAssignOrCall() (Stmt, error) {
	name := p.cur()
	// Lookahead to distinguish a call statement from an assignment.
	if p.toks[p.pos+1].Kind == TokLParen {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ExprStmt{X: e, Pos: name.Pos}, nil
	}
	a, err := p.parseSimpleAssign()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return a, nil
}

// Expression parsing with precedence climbing.
//
// Precedence (low to high): || ; && ; | ; ^ ; & ; == != ; < <= > >= ;
// << >> ; + - ; * / % ; unary - ! ; primary.

type precLevel struct {
	ops []TokKind
}

var precLevels = []precLevel{
	{ops: []TokKind{TokOrOr}},
	{ops: []TokKind{TokAndAnd}},
	{ops: []TokKind{TokPipe}},
	{ops: []TokKind{TokCaret}},
	{ops: []TokKind{TokAmp}},
	{ops: []TokKind{TokEq, TokNe}},
	{ops: []TokKind{TokLt, TokLe, TokGt, TokGe}},
	{ops: []TokKind{TokShl, TokShr}},
	{ops: []TokKind{TokPlus, TokMinus}},
	{ops: []TokKind{TokStar, TokSlash, TokPercent}},
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(0) }

func (p *Parser) parseBinary(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precLevels[level].ops {
			if p.at(op) {
				opTok := p.next()
				rhs, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				lhs = &BinaryExpr{Op: opTok.Kind, X: lhs, Y: rhs, Pos: opTok.Pos}
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.at(TokMinus) || p.at(TokBang) {
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op.Kind, X: x, Pos: op.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.cur().Kind {
	case TokNumber:
		t := p.next()
		v, err := strconv.ParseInt(t.Text, 0, 64)
		if err != nil {
			return nil, &Error{Pos: t.Pos, Msg: "malformed number literal"}
		}
		return &NumberLit{Value: v, Pos: t.Pos}, nil
	case TokTrue:
		t := p.next()
		return &BoolLit{Value: true, Pos: t.Pos}, nil
	case TokFalse:
		t := p.next()
		return &BoolLit{Value: false, Pos: t.Pos}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokSpawn:
		kw := p.next()
		fn, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		return &SpawnExpr{Func: fn.Text, Args: args, Pos: kw.Pos}, nil
	case TokIdent:
		id := p.next()
		switch p.cur().Kind {
		case TokLParen:
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Name: id.Text, Args: args, Pos: id.Pos}, nil
		case TokLBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: id.Text, Index: idx, Pos: id.Pos}, nil
		}
		return &Ident{Name: id.Text, Pos: id.Pos}, nil
	}
	return nil, p.errf("expected expression, found %s", p.cur())
}

func (p *Parser) parseArgs() ([]Expr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var args []Expr
	if !p.at(TokRParen) {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return args, nil
}
