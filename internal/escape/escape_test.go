package escape

import (
	"testing"

	"repro/internal/ir"
)

func analyze(t *testing.T, src string) (*ir.Program, *Result) {
	t.Helper()
	prog, err := ir.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog, Analyze(prog)
}

func sharedNames(prog *ir.Program, res *Result) map[string]bool {
	m := map[string]bool{}
	for g, s := range res.Shared {
		if s {
			m[prog.Globals[g].Name] = true
		}
	}
	return m
}

func TestMainOnlyGlobalsNotShared(t *testing.T) {
	prog, res := analyze(t, `
int a;
int b;
func main() {
	a = 1;
	b = a + 1;
}
`)
	if got := sharedNames(prog, res); len(got) != 0 {
		t.Fatalf("no threads spawned, but shared = %v", got)
	}
}

func TestGlobalSharedBetweenMainAndChild(t *testing.T) {
	prog, res := analyze(t, `
int shared;
int mainonly;
int childonly;
func child() {
	shared = 1;
	childonly = 2;
}
func main() {
	int h;
	h = spawn child();
	mainonly = 3;
	shared = shared + 1;
	join(h);
}
`)
	got := sharedNames(prog, res)
	if !got["shared"] {
		t.Error("shared must be marked shared")
	}
	if got["mainonly"] {
		t.Error("mainonly must not be shared")
	}
	if got["childonly"] {
		t.Error("childonly accessed by a single-instance thread must not be shared")
	}
}

func TestSpawnTwiceMakesChildGlobalsShared(t *testing.T) {
	prog, res := analyze(t, `
int counter;
func worker() {
	counter = counter + 1;
}
func main() {
	int h1;
	int h2;
	h1 = spawn worker();
	h2 = spawn worker();
	join(h1);
	join(h2);
}
`)
	if !sharedNames(prog, res)["counter"] {
		t.Error("counter accessed by two worker instances must be shared")
	}
}

func TestSpawnInLoopIsMany(t *testing.T) {
	prog, res := analyze(t, `
int counter;
func worker() {
	counter = counter + 1;
}
func main() {
	int i;
	for (i = 0; i < 4; i = i + 1) {
		int h;
		h = spawn worker();
	}
}
`)
	if !sharedNames(prog, res)["counter"] {
		t.Error("spawn in loop must make worker's globals shared")
	}
}

func TestSharingThroughHelperCalls(t *testing.T) {
	prog, res := analyze(t, `
int deep;
func helper() {
	deep = deep + 1;
}
func worker() {
	helper();
}
func main() {
	int h;
	h = spawn worker();
	helper();
	join(h);
}
`)
	if !sharedNames(prog, res)["deep"] {
		t.Error("global reached via calls from two roots must be shared")
	}
}

func TestRecursionTerminates(t *testing.T) {
	prog, res := analyze(t, `
int x;
func rec(n) {
	if (n > 0) {
		x = x + 1;
		rec(n - 1);
	}
}
func main() {
	rec(5);
}
`)
	if sharedNames(prog, res)["x"] {
		t.Error("recursive single-thread access is not shared")
	}
	_ = prog
}

func TestNestedSpawns(t *testing.T) {
	prog, res := analyze(t, `
int g;
func grandchild() {
	g = g + 1;
}
func child() {
	int h;
	h = spawn grandchild();
	join(h);
}
func main() {
	int h1;
	int h2;
	h1 = spawn child();
	h2 = spawn child();
	join(h1);
	join(h2);
}
`)
	// child runs twice, so grandchild is spawned from two thread
	// instances: g is shared.
	if !sharedNames(prog, res)["g"] {
		t.Error("grandchild spawned from a many-instance parent must make g shared")
	}
}

func TestSingleNestedSpawnNotShared(t *testing.T) {
	prog, res := analyze(t, `
int g;
func grandchild() {
	g = g + 1;
}
func child() {
	int h;
	h = spawn grandchild();
	join(h);
}
func main() {
	int h1;
	h1 = spawn child();
	join(h1);
}
`)
	if sharedNames(prog, res)["g"] {
		t.Error("one instance of grandchild only; g must not be shared")
	}
}

func TestArraysShareLikeScalars(t *testing.T) {
	prog, res := analyze(t, `
int buf[8];
func producer() {
	buf[0] = 1;
}
func main() {
	int h;
	h = spawn producer();
	int v = buf[1];
	print(v);
	join(h);
}
`)
	if !sharedNames(prog, res)["buf"] {
		t.Error("array accessed by two threads must be shared")
	}
}

func TestSharedCountAndAccessedBy(t *testing.T) {
	prog, res := analyze(t, `
int a;
int b;
func worker() { a = 1; }
func main() {
	int h;
	h = spawn worker();
	a = 2;
	b = 3;
	join(h);
}
`)
	if res.SharedCount() != 1 {
		t.Fatalf("SharedCount = %d, want 1", res.SharedCount())
	}
	aID := prog.GlobalByName("a")
	if len(res.AccessedBy[aID]) != 2 {
		t.Errorf("a accessed by %v, want 2 functions", res.AccessedBy[aID])
	}
	if !res.IsShared(aID) {
		t.Error("IsShared(a) must be true")
	}
}

func TestAccessedBySorted(t *testing.T) {
	// Many functions touching the same global: the diagnostic lists must
	// come out in ascending FuncID order on every run.
	prog, res := analyze(t, `
int x;
func f1() { x = 1; }
func f2() { x = 2; }
func f3() { x = 3; }
func f4() { x = 4; }
func f5() { x = 5; }
func main() {
	int h1 = spawn f1();
	int h2 = spawn f2();
	int h3 = spawn f3();
	int h4 = spawn f4();
	int h5 = spawn f5();
	join(h1); join(h2); join(h3); join(h4); join(h5);
	x = 0;
}
`)
	fns := res.AccessedBy[prog.GlobalByName("x")]
	if len(fns) != 6 {
		t.Fatalf("x accessed by %v, want 6 functions", fns)
	}
	for i := 1; i < len(fns); i++ {
		if fns[i-1] >= fns[i] {
			t.Fatalf("AccessedBy not sorted ascending: %v", fns)
		}
	}
}
