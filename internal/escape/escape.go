// Package escape implements the static thread-sharing analysis that plays
// the role of the Locksmith-based shared-access identification in the
// paper (§5 "Shared Memory Access Identification").
//
// A global variable is *shared* when it may be accessed by more than one
// thread. The analysis is deliberately conservative (like the paper's): it
// computes, per function, the set of globals reachable through the call
// graph, determines which functions can run in which thread roots (main
// plus every spawned function), saturates thread multiplicity at "many"
// when a spawn site sits in a loop or a function is spawned from several
// sites, and marks a global shared when the total multiplicity of roots
// accessing it exceeds one.
//
// Identifying shared accesses statically is what keeps CLAP's recording
// free of runtime address tracking; the constraint encoder then only
// models shared accesses as SAPs, which "reduces the size of the
// constraints" (paper §5) without affecting soundness.
package escape

import (
	"slices"

	"repro/internal/ir"
)

// Result is the outcome of the sharing analysis.
type Result struct {
	// Shared is indexed by ir.GlobalID.
	Shared []bool
	// AccessedBy maps each global to the functions that access it directly
	// (diagnostics).
	AccessedBy map[ir.GlobalID][]ir.FuncID
}

// SharedCount returns the number of shared globals (the paper's #SV).
func (r *Result) SharedCount() int {
	n := 0
	for _, s := range r.Shared {
		if s {
			n++
		}
	}
	return n
}

// IsShared reports whether global g is thread-shared.
func (r *Result) IsShared(g ir.GlobalID) bool { return r.Shared[g] }

// multiplicity saturates thread instance counts at "many".
type multiplicity uint8

const (
	multNone multiplicity = iota
	multOne
	multMany
)

func (m multiplicity) add(o multiplicity) multiplicity {
	s := uint8(m) + uint8(o)
	if s >= uint8(multMany) {
		return multMany
	}
	return multiplicity(s)
}

// Analyze runs the sharing analysis on prog.
func Analyze(prog *ir.Program) *Result {
	n := len(prog.Funcs)

	// directAccess[f] = globals f's own instructions touch.
	directAccess := make([]map[ir.GlobalID]bool, n)
	// callees[f] = functions f calls directly.
	callees := make([][]ir.FuncID, n)
	// spawnSites[f] = for each spawn of f, whether the site is inside a
	// loop of the spawning function, and who spawns.
	type spawnSite struct {
		spawner ir.FuncID
		inLoop  bool
	}
	spawnSites := map[ir.FuncID][]spawnSite{}

	for fi, fn := range prog.Funcs {
		directAccess[fi] = map[ir.GlobalID]bool{}
		loopBlocks := blocksInLoops(fn)
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch x := in.(type) {
				case *ir.LoadG:
					directAccess[fi][x.Global] = true
				case *ir.StoreG:
					directAccess[fi][x.Global] = true
				case *ir.LoadA:
					directAccess[fi][x.Array] = true
				case *ir.StoreA:
					directAccess[fi][x.Array] = true
				case *ir.Call:
					callees[fi] = append(callees[fi], x.Func)
				case *ir.Spawn:
					spawnSites[x.Func] = append(spawnSites[x.Func], spawnSite{
						spawner: ir.FuncID(fi),
						inLoop:  loopBlocks[b.ID],
					})
				}
			}
		}
	}

	// reach[f] = all globals accessed by f or its transitive callees.
	// Iterate to a fixpoint (handles recursion).
	reach := make([]map[ir.GlobalID]bool, n)
	for i := range reach {
		reach[i] = map[ir.GlobalID]bool{}
		for g := range directAccess[i] {
			reach[i][g] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fi := range prog.Funcs {
			for _, c := range callees[fi] {
				for g := range reach[c] {
					if !reach[fi][g] {
						reach[fi][g] = true
						changed = true
					}
				}
			}
		}
	}

	// Spawned functions are also "callees" in terms of which code a thread
	// root can transitively cause to run — but spawned code runs in its own
	// thread, so it is a separate root, not part of the spawner's closure.

	// Thread multiplicity per root: main runs once. A spawned function f's
	// multiplicity is the sum over its spawn sites of the spawner-root
	// multiplicity, saturated to many when the site is in a loop. Because
	// spawners may themselves be spawned, iterate to a fixpoint.
	rootMult := make([]multiplicity, n)
	rootMult[prog.MainID] = multOne
	// rootsRunning[f] = multiplicity with which function f executes across
	// all threads (as a root or via calls from roots).
	for changed := true; changed; {
		changed = false
		// runMult[f]: how many threads may be executing f.
		runMult := make([]multiplicity, n)
		runMult[prog.MainID] = multOne
		for fi := range prog.Funcs {
			if rootMult[fi] != multNone && ir.FuncID(fi) != prog.MainID {
				runMult[fi] = runMult[fi].add(rootMult[fi])
			}
		}
		// Propagate through calls (a callee runs in as many threads as its
		// callers combined).
		for again := true; again; {
			again = false
			for fi := range prog.Funcs {
				for _, c := range callees[fi] {
					combined := runMult[c].add(runMult[fi])
					if combined != runMult[c] {
						runMult[c] = combined
						again = true
					}
				}
			}
		}
		for f, sites := range spawnSites {
			var m multiplicity
			for _, s := range sites {
				sm := runMult[s.spawner]
				if sm == multNone {
					continue // spawner itself never runs
				}
				if s.inLoop {
					sm = multMany
				}
				m = m.add(sm)
			}
			if m != rootMult[f] {
				rootMult[f] = m
				changed = true
			}
		}
	}

	// A global is shared when the roots that can access it have combined
	// multiplicity >= 2.
	res := &Result{
		Shared:     make([]bool, len(prog.Globals)),
		AccessedBy: map[ir.GlobalID][]ir.FuncID{},
	}
	for fi := range prog.Funcs {
		for g := range directAccess[fi] {
			res.AccessedBy[g] = append(res.AccessedBy[g], ir.FuncID(fi))
		}
	}
	// Sort explicitly rather than relying on the append order above, so
	// diagnostics stay deterministic under refactoring.
	for g := range res.AccessedBy {
		slices.Sort(res.AccessedBy[g])
	}
	for g := range prog.Globals {
		var m multiplicity
		for fi := range prog.Funcs {
			if rootMult[fi] == multNone {
				continue
			}
			if reach[fi][ir.GlobalID(g)] {
				m = m.add(rootMult[fi])
			}
		}
		res.Shared[g] = m >= multMany
	}
	return res
}

// blocksInLoops reports which blocks of fn sit inside a natural loop,
// approximated as: blocks from which a back-edge source is reachable and
// which are reachable from the corresponding back-edge target.
func blocksInLoops(fn *ir.Func) map[ir.BlockID]bool {
	in := map[ir.BlockID]bool{}
	back := fn.BackEdges()
	if len(back) == 0 {
		return in
	}
	// Reachability between blocks.
	reach := map[ir.BlockID]map[ir.BlockID]bool{}
	var dfs func(from ir.BlockID, b *ir.Block)
	dfs = func(from ir.BlockID, b *ir.Block) {
		if reach[from][b.ID] {
			return
		}
		reach[from][b.ID] = true
		for _, s := range b.Succs() {
			dfs(from, s)
		}
	}
	blockByID := map[ir.BlockID]*ir.Block{}
	for _, b := range fn.Blocks {
		blockByID[b.ID] = b
	}
	for _, b := range fn.Blocks {
		reach[b.ID] = map[ir.BlockID]bool{}
		dfs(b.ID, b)
	}
	for e := range back {
		src, dst := e[0], e[1]
		// Loop body: blocks reachable from dst that can reach src.
		for _, b := range fn.Blocks {
			if reach[dst][b.ID] && reach[b.ID][src] {
				in[b.ID] = true
			}
		}
	}
	return in
}
