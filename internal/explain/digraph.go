package explain

import "repro/internal/constraints"

// diGraph is the oracle's order graph: adjacency lists with a LIFO trail
// for backtracking and a DFS cycle check per insertion. The production
// solver's Pearce–Kelly graph is faster, but the oracle runs a handful of
// budgeted checks per explain invocation, not millions per solve — plain
// DFS keeps this package dependency-light and obviously correct.
type diGraph struct {
	adj   [][]constraints.SAPRef
	trail []constraints.SAPRef // flat (from) list; adj pops mirror it

	seen    []int32
	seenGen int32
	stack   []constraints.SAPRef
}

func newDiGraph(n int) *diGraph {
	return &diGraph{adj: make([][]constraints.SAPRef, n), seen: make([]int32, n)}
}

// mark returns an undo point.
func (g *diGraph) mark() int { return len(g.trail) }

// undoTo pops edges back to the mark, LIFO.
func (g *diGraph) undoTo(mark int) {
	for len(g.trail) > mark {
		from := g.trail[len(g.trail)-1]
		g.trail = g.trail[:len(g.trail)-1]
		g.adj[from] = g.adj[from][:len(g.adj[from])-1]
	}
}

// addEdge inserts a < b unless it would close a cycle (then the graph is
// unchanged and addEdge reports false).
func (g *diGraph) addEdge(a, b constraints.SAPRef) bool {
	if a == b {
		return false
	}
	if g.reaches(b, a) {
		return false
	}
	g.adj[a] = append(g.adj[a], b)
	g.trail = append(g.trail, a)
	return true
}

// reaches reports whether to is reachable from from.
func (g *diGraph) reaches(from, to constraints.SAPRef) bool {
	g.seenGen++
	g.stack = g.stack[:0]
	g.stack = append(g.stack, from)
	g.seen[from] = g.seenGen
	for len(g.stack) > 0 {
		v := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		if v == to {
			return true
		}
		for _, w := range g.adj[v] {
			if g.seen[w] != g.seenGen {
				g.seen[w] = g.seenGen
				g.stack = append(g.stack, w)
			}
		}
	}
	return false
}
