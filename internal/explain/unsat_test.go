package explain_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/constraints"
	"repro/internal/explain"
	"repro/internal/symbolic"
)

// freshSystem builds sim_race's real constraint system — small enough for
// the oracle to decide exactly, rich enough to exercise every group kind
// the program has.
func freshSystem(t *testing.T) *constraints.System {
	t.Helper()
	b, ok := bench.ByName("sim_race")
	if !ok {
		t.Fatal("sim_race benchmark missing")
	}
	p, err := bench.Prepare(b)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := p.Recording.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestGroupsPartition(t *testing.T) {
	sys := freshSystem(t)
	groups := sys.Groups()
	if len(groups) == 0 {
		t.Fatal("no groups")
	}
	// Every hard edge must land in exactly one group.
	edges := 0
	ids := map[string]bool{}
	for _, g := range groups {
		if ids[g.ID] {
			t.Errorf("duplicate group id %s", g.ID)
		}
		ids[g.ID] = true
		edges += len(g.Edges)
	}
	if edges != len(sys.HardEdges) {
		t.Errorf("groups carry %d edges, system has %d", edges, len(sys.HardEdges))
	}
	if !ids["fbug"] {
		t.Error("missing fbug group")
	}
	// Determinism: two partitions of the same system agree.
	again := sys.Groups()
	if len(again) != len(groups) {
		t.Fatalf("partition not deterministic: %d vs %d groups", len(again), len(groups))
	}
	for i := range groups {
		if groups[i].ID != again[i].ID {
			t.Errorf("group %d: %s vs %s", i, groups[i].ID, again[i].ID)
		}
	}
}

func TestMinimizeUnsatSatisfiable(t *testing.T) {
	sys := freshSystem(t)
	core := explain.MinimizeUnsat(sys, explain.MUSOptions{})
	if !core.Satisfiable {
		t.Fatalf("sim_race's real system should be satisfiable, got unsat=%v", core.Unsat)
	}
	var sb strings.Builder
	core.Render(&sb)
	if !strings.Contains(sb.String(), "satisfiable") {
		t.Errorf("verdict should mention satisfiability:\n%s", sb.String())
	}
}

func TestMinimizeUnsatCycle(t *testing.T) {
	sys := freshSystem(t)
	// Construct an unsatisfiable input: a cross-thread order cycle between
	// the first SAPs of two threads. Both edges classify as fso/order, so
	// the minimal core must be exactly that group.
	if len(sys.Threads) < 2 {
		t.Fatal("need two threads")
	}
	a, b := sys.Threads[0][0], sys.Threads[1][0]
	sys.HardEdges = append(sys.HardEdges, [2]constraints.SAPRef{a, b}, [2]constraints.SAPRef{b, a})

	core := explain.MinimizeUnsat(sys, explain.MUSOptions{})
	if !core.Unsat {
		t.Fatal("constructed cycle not reported unsat")
	}
	if len(core.Groups) == 0 {
		t.Fatal("empty minimal core")
	}
	if len(core.Groups) != 1 || core.Groups[0].ID != "fso/order" {
		ids := make([]string, 0, len(core.Groups))
		for _, g := range core.Groups {
			ids = append(ids, g.ID)
		}
		t.Fatalf("expected core {fso/order}, got %v", ids)
	}
	var sb strings.Builder
	core.Render(&sb)
	if !strings.Contains(sb.String(), "no schedule exists") ||
		!strings.Contains(sb.String(), "fso/order") {
		t.Errorf("verdict missing core details:\n%s", sb.String())
	}
}

func TestMinimizeUnsatFalseBug(t *testing.T) {
	sys := freshSystem(t)
	// A bug predicate that cannot hold: the core must be {fbug} alone.
	sys.Bug = symbolic.Bool(false)
	core := explain.MinimizeUnsat(sys, explain.MUSOptions{})
	if !core.Unsat {
		t.Fatal("false bug predicate not reported unsat")
	}
	if len(core.Groups) != 1 || core.Groups[0].ID != "fbug" {
		ids := make([]string, 0, len(core.Groups))
		for _, g := range core.Groups {
			ids = append(ids, g.ID)
		}
		t.Fatalf("expected core {fbug}, got %v", ids)
	}
}
