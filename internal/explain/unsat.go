package explain

import (
	"fmt"
	"io"

	"repro/internal/constraints"
)

// MUSOptions parameterizes the minimal-unsat-subset shrink.
type MUSOptions struct {
	// Budget bounds each oracle invocation's search nodes (default
	// 200_000). Exhaustion makes that check "unknown" and the candidate
	// group is conservatively kept.
	Budget int64
}

// Core is the shrinker's result: a verdict on why solving failed.
type Core struct {
	// Unsat reports whether the oracle confirmed the full constraint
	// system unsatisfiable. When false, the system is satisfiable (or
	// undecided) as far as the oracle can tell and Groups is empty — the
	// production solve failed on budgets or bounds, not on conflicting
	// constraints.
	Unsat bool
	// Satisfiable is set when the oracle positively found a schedule for
	// the full system (distinguishing "sat" from "budget ran out").
	Satisfiable bool
	// Groups is the minimal unsatisfiable subset: deleting any single
	// member makes the remainder satisfiable (relative to the oracle; see
	// package comment).
	Groups []constraints.Group
	// Checks counts oracle invocations; Kept counts groups kept because a
	// deletion check exhausted its budget (0 means the core is fully
	// shrunk).
	Checks int
	Kept   int
}

// MinimizeUnsat explains an unsatisfiable constraint system by
// delete-based shrinking over its per-rule groups: starting from the full
// group set, each group is dropped in turn and kept only if the remainder
// becomes satisfiable. The surviving set is a minimal conflicting core —
// the smallest (inclusion-wise) set of encoding rules that together admit
// no schedule.
func MinimizeUnsat(sys *constraints.System, opts MUSOptions) *Core {
	if opts.Budget <= 0 {
		opts.Budget = 200_000
	}
	groups := sys.Groups()
	keep := make([]bool, len(groups))
	for i := range keep {
		keep[i] = true
	}
	core := &Core{}

	core.Checks++
	switch check(sys, groups, keep, opts.Budget) {
	case vSat:
		core.Satisfiable = true
		return core
	case vUnknown:
		return core
	}
	core.Unsat = true

	// Delete-based shrink: drop one group at a time; if the rest is still
	// unsat the group is irrelevant to the conflict and stays dropped.
	for i := range groups {
		keep[i] = false
		core.Checks++
		switch check(sys, groups, keep, opts.Budget) {
		case vUnsat:
			// still conflicting without it: delete permanently
		case vSat:
			keep[i] = true // deleting it restored satisfiability: essential
		case vUnknown:
			keep[i] = true // undecided: keep conservatively
			core.Kept++
		}
	}
	for i, g := range groups {
		if keep[i] {
			core.Groups = append(core.Groups, g)
		}
	}
	return core
}

// Render writes the human-readable "why no schedule exists" verdict.
func (c *Core) Render(w io.Writer) {
	switch {
	case c.Satisfiable:
		fmt.Fprintln(w, "no conflicting constraints: the relaxed check finds the system satisfiable —")
		fmt.Fprintln(w, "the production solve failed on its search budgets or preemption bounds, not on F itself.")
		fmt.Fprintln(w, "Retry with a higher -timeout or an explicit preemption bound.")
		return
	case !c.Unsat:
		fmt.Fprintln(w, "undecided: the explanation oracle exhausted its budget before confirming the")
		fmt.Fprintln(w, "system unsatisfiable; no minimal core to report.")
		return
	}
	fmt.Fprintf(w, "no schedule exists: %d constraint groups conflict (after %d oracle checks)\n", len(c.Groups), c.Checks)
	if c.Kept > 0 {
		fmt.Fprintf(w, "(%d groups kept on budget exhaustion — the core may not be fully minimal)\n", c.Kept)
	}
	for _, g := range c.Groups {
		fmt.Fprintf(w, "  %-16s %s\n", g.ID, g.Desc)
	}
	fmt.Fprintln(w, "deleting any one of these groups admits a schedule; together they admit none.")
}
