package explain

import (
	"repro/internal/constraints"
)

// Pivot probing for the zero-flip verdict.
//
// When the solver's schedule preserves the recorded order of every
// conflicting pair, the diff alone cannot say whether that order matters.
// The probe answers it: re-check the full constraint system with one
// extra hard edge forcing the pair's REVERSED order. The oracle
// over-approximates satisfiability (see oracle.go), so oracle-unsat is a
// sound proof that no failing schedule reverses the pair — the pair's
// recorded order is the failure's trigger, the strongest statement a
// race-flip report can make.

// Pivot is one racing pair probed with its order reversed.
type Pivot struct {
	Pair Flip
	// Essential means the oracle proved no failing schedule can reverse
	// the pair. When false with Known, a relaxed schedule reversing it
	// exists (inconclusive: the oracle over-approximates). Known is false
	// when the probe's budget ran out.
	Essential bool
	Known     bool
}

// ProbeReversal checks whether any schedule satisfying the full
// constraint system could order second before first. budget <= 0 uses
// the MUS shrinker's default.
func ProbeReversal(sys *constraints.System, first, second constraints.SAPRef, budget int64) Pivot {
	if budget <= 0 {
		budget = 200_000
	}
	groups := sys.Groups()
	groups = append(groups, constraints.Group{
		Kind:   constraints.GroupOrder,
		ID:     "probe/reversal",
		Desc:   "probe: reversed racing-pair order",
		Thread: -1, Mutex: -1, Index: -1,
		Edges: [][2]constraints.SAPRef{{second, first}},
	})
	keep := make([]bool, len(groups))
	for i := range keep {
		keep[i] = true
	}
	p := Pivot{Pair: Flip{Kind: FlipRW, First: first, Second: second}}
	switch check(sys, groups, keep, budget) {
	case vUnsat:
		p.Essential, p.Known = true, true
	case vSat:
		p.Known = true
	}
	return p
}

// ProbeRacePairs runs the reversal probe over the diff's racing pairs
// and stores the verdicts for Render. Intended for the zero-flip case;
// a no-op when the diff recorded no memory pairs.
func (d *Diff) ProbeRacePairs(budget int64) {
	for _, f := range d.racePairs {
		p := ProbeReversal(d.sys, f.First, f.Second, budget)
		p.Pair = f
		d.Pivots = append(d.Pivots, p)
	}
}
