// Package explain turns the pipeline's answers into explanations: a
// schedule-diff report naming the SAP pairs the solver flipped relative to
// the recorded interleaving (the race flips that trigger the bug, with
// source positions), and — when solving fails — a delete-based minimal
// unsatisfiable subset over the per-rule constraint groups, rendered as a
// human-readable "why no schedule exists" verdict.
package explain

import (
	"fmt"

	"repro/internal/constraints"
	"repro/internal/symexec"
	"repro/internal/vm"
)

// evKindOf maps a SAP kind to the VM event kind its execution produces.
var evKindOf = map[symexec.SAPKind]vm.EventKind{
	symexec.SAPStart: vm.EvStart, symexec.SAPExit: vm.EvExit,
	symexec.SAPRead: vm.EvRead, symexec.SAPWrite: vm.EvWrite,
	symexec.SAPLock: vm.EvLock, symexec.SAPUnlock: vm.EvUnlock,
	symexec.SAPWaitBegin: vm.EvWaitBegin, symexec.SAPWaitEnd: vm.EvWaitEnd,
	symexec.SAPSignal: vm.EvSignal, symexec.SAPBroadcast: vm.EvBroadcast,
	symexec.SAPFork: vm.EvSpawn, symexec.SAPJoin: vm.EvJoin,
	symexec.SAPYield: vm.EvYield, symexec.SAPFence: vm.EvFence,
}

// NoTime marks a SAP with no recorded timestamp: a demoted access, which
// produced no visible event in the recorded run.
const NoTime int64 = -1

// AlignRecorded maps each SAP to the logical time of its visible event in
// the recorded run, by walking each thread's SAP sequence against the
// thread's recorded events in program order. Demoted memory SAPs
// (demoted[var] true) produced no event and get NoTime; drain events are
// not SAPs and are skipped on the event side. The returned slice is
// indexed by SAPRef.
//
// CLAP records no global order, so the caller must obtain events from a
// deterministic re-run of the recorded seed (core.Recording.CaptureEvents)
// — per-thread subsequences alone would not define the cross-thread times
// this alignment hands to the schedule diff.
func AlignRecorded(sys *constraints.System, events []vm.VisibleEvent, demoted []bool) ([]int64, error) {
	byThread := map[int][]vm.VisibleEvent{}
	for _, ev := range events {
		if ev.Kind == vm.EvDrain {
			continue
		}
		byThread[int(ev.Thread)] = append(byThread[int(ev.Thread)], ev)
	}
	times := make([]int64, len(sys.SAPs))
	for tid, refs := range sys.Threads {
		evs := byThread[tid]
		if len(evs) == 0 {
			// A spawned-but-never-scheduled thread: symexec still emits its
			// Start pseudo-SAP, but the VM never ran it, so nothing to align.
			for _, r := range refs {
				times[r] = NoTime
			}
			continue
		}
		cur := 0
		for _, r := range refs {
			s := sys.SAP(r)
			if s.Kind.IsMemory() && int(s.Var) < len(demoted) && demoted[s.Var] {
				times[r] = NoTime
				continue
			}
			if cur >= len(evs) {
				return nil, fmt.Errorf("explain: thread %d has %d recorded events for %d SAPs (ran out at t%d#%d %s)",
					tid, len(evs), len(refs), s.Thread, s.Seq, s.Kind)
			}
			ev := evs[cur]
			cur++
			if want, ok := evKindOf[s.Kind]; !ok || ev.Kind != want {
				return nil, fmt.Errorf("explain: thread %d SAP t%d#%d %s does not match recorded event %s",
					tid, s.Thread, s.Seq, s.Kind, ev.Kind)
			}
			times[r] = ev.Time
		}
		if cur != len(evs) {
			return nil, fmt.Errorf("explain: thread %d has %d recorded events beyond its %d SAPs", tid, len(evs)-cur, len(refs))
		}
	}
	return times, nil
}
