package explain

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/constraints"
	"repro/internal/symexec"
)

// Flip kinds, from most to least diagnostic.
const (
	// FlipRW is a read/write or write/write pair on the same variable
	// whose order the solver reversed.
	FlipRW = "memory"
	// FlipLock is a pair of lock regions on the same mutex whose order the
	// solver reversed.
	FlipLock = "lock"
	// FlipSync is a pair of synchronization operations whose scheduling
	// order the solver reversed. The replayer enforces the solved schedule
	// as a total order over sync operations, so these are the scheduling
	// decisions the solver actually changed, even when no data conflict
	// links the two operations.
	FlipSync = "sync"
)

// flipRank orders flip kinds from most to least diagnostic.
func flipRank(kind string) int {
	switch kind {
	case FlipRW:
		return 0
	case FlipLock:
		return 1
	default:
		return 2
	}
}

// Flip is one conflicting SAP pair whose relative order differs between
// the recorded interleaving and the solved schedule: First ran before
// Second in the recorded run, but the solver scheduled Second first.
type Flip struct {
	Kind          string
	First, Second constraints.SAPRef
}

// Remap is a read whose last writer changed between the recorded
// interleaving and the solved schedule — the value-level consequence of
// the flips, the paper's actual race. A write of NoRef means the read
// observed the variable's initial value.
type Remap struct {
	Read                       constraints.SAPRef
	RecordedWrite, SolvedWrite constraints.SAPRef
	// SolvedValue is the value the read observes under the solved
	// schedule, when the witness binds it.
	SolvedValue   int64
	SolvedValueOK bool
}

// NoRef marks "initial value" in a Remap.
const NoRef constraints.SAPRef = -1

// maxFlips caps the enumerated flip list; the count of further flips is
// still reported. The stress benchmarks have thousands of conflicting
// pairs and a verdict listing them all explains nothing.
const maxFlips = 200

// maxRacePairs caps the racing-pair list shown by the zero-flip verdict.
const maxRacePairs = 10

// Diff is the schedule-diff report.
type Diff struct {
	// Flips whose order the solver reversed, memory pairs first, both
	// sorted by solved-schedule position of the earlier endpoint.
	Flips []Flip
	// TotalFlips counts all reversed conflicting pairs, including those
	// beyond the maxFlips cap.
	TotalFlips int
	// Remaps are reads whose last writer changed.
	Remaps []Remap
	// ConflictingPairs counts all cross-thread conflicting pairs with
	// known recorded order (the diff's denominator).
	ConflictingPairs int
	// racePairs keeps the first few memory conflicting pairs (flipped or
	// not) so the zero-flip verdict can still name the race candidates.
	racePairs []Flip
	// Pivots holds reversal-probe verdicts for the racing pairs, filled
	// by ProbeRacePairs for the zero-flip verdict.
	Pivots []Pivot

	sys *constraints.System
}

// DiffSchedules compares the solved schedule against the recorded
// interleaving. recordedTimes comes from AlignRecorded (NoTime entries —
// demoted accesses — are skipped: they are proven race-free, so their
// order cannot be the trigger). The witness, when given, adds the
// last-writer remaps.
func DiffSchedules(sys *constraints.System, recordedTimes []int64, order []constraints.SAPRef, w *constraints.Witness) *Diff {
	d := &Diff{sys: sys}
	solvedPos := make([]int, len(sys.SAPs))
	for i := range solvedPos {
		solvedPos[i] = -1
	}
	for i, r := range order {
		solvedPos[r] = i
	}
	known := func(r constraints.SAPRef) bool {
		return recordedTimes[r] != NoTime && solvedPos[r] >= 0
	}
	// flipped records pair (a, b) with a recorded before b; returns the
	// flip when the solver reversed them.
	addPair := func(kind string, a, b constraints.SAPRef) {
		if recordedTimes[a] > recordedTimes[b] {
			a, b = b, a
		}
		d.ConflictingPairs++
		if kind == FlipRW && len(d.racePairs) < maxRacePairs {
			d.racePairs = append(d.racePairs, Flip{Kind: kind, First: a, Second: b})
		}
		if solvedPos[a] > solvedPos[b] {
			d.TotalFlips++
			if len(d.Flips) < maxFlips {
				d.Flips = append(d.Flips, Flip{Kind: kind, First: a, Second: b})
			}
		}
	}

	// Memory pairs: cross-thread, same variable, possibly same address, at
	// least one write.
	byVar := map[int][]constraints.SAPRef{}
	for i, s := range sys.SAPs {
		if s.Kind.IsMemory() && known(constraints.SAPRef(i)) {
			byVar[int(s.Var)] = append(byVar[int(s.Var)], constraints.SAPRef(i))
		}
	}
	vars := make([]int, 0, len(byVar))
	for v := range byVar {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	for _, v := range vars {
		refs := byVar[v]
		for i := 0; i < len(refs); i++ {
			for j := i + 1; j < len(refs); j++ {
				a, b := sys.SAP(refs[i]), sys.SAP(refs[j])
				if a.Thread == b.Thread {
					continue
				}
				if a.Kind != symexec.SAPWrite && b.Kind != symexec.SAPWrite {
					continue
				}
				if !maybeSameAddr(a, b) {
					continue
				}
				addPair(FlipRW, refs[i], refs[j])
			}
		}
	}

	// Lock-region pairs: same mutex, different threads, compared by their
	// acquire SAPs.
	for _, m := range sys.RegionMutexes() {
		regs := sys.Regions[m]
		for i := 0; i < len(regs); i++ {
			for j := i + 1; j < len(regs); j++ {
				if regs[i].Thread == regs[j].Thread {
					continue
				}
				if !known(regs[i].Lock) || !known(regs[j].Lock) {
					continue
				}
				addPair(FlipLock, regs[i].Lock, regs[j].Lock)
			}
		}
	}

	// Synchronization pairs: any two sync operations on different threads.
	// The deterministic replayer drives the program by the solved
	// schedule's synchronization subsequence, so a reversed sync pair is a
	// scheduling decision the solver changed even without a data conflict.
	// Lock/lock pairs on the same mutex are already counted as lock-region
	// pairs above and are skipped here.
	var syncs []constraints.SAPRef
	for i, s := range sys.SAPs {
		if s.Kind.IsSync() && known(constraints.SAPRef(i)) {
			syncs = append(syncs, constraints.SAPRef(i))
		}
	}
	for i := 0; i < len(syncs); i++ {
		for j := i + 1; j < len(syncs); j++ {
			a, b := sys.SAP(syncs[i]), sys.SAP(syncs[j])
			if a.Thread == b.Thread {
				continue
			}
			if a.Kind == symexec.SAPLock && b.Kind == symexec.SAPLock && a.Mutex == b.Mutex {
				continue
			}
			addPair(FlipSync, syncs[i], syncs[j])
		}
	}

	sort.SliceStable(d.Flips, func(i, j int) bool {
		fi, fj := d.Flips[i], d.Flips[j]
		if flipRank(fi.Kind) != flipRank(fj.Kind) {
			return flipRank(fi.Kind) < flipRank(fj.Kind)
		}
		pi := min(solvedPos[fi.First], solvedPos[fi.Second])
		pj := min(solvedPos[fj.First], solvedPos[fj.Second])
		if pi != pj {
			return pi < pj
		}
		return fi.First < fj.First
	})

	if w != nil {
		d.buildRemaps(recordedTimes, w)
	}
	return d
}

// buildRemaps derives each read's recorded last writer (latest
// definitely-same-address write before it in recorded time) and compares
// it with the witness mapping.
func (d *Diff) buildRemaps(recordedTimes []int64, w *constraints.Witness) {
	sys := d.sys
	for _, ri := range sys.Reads {
		if recordedTimes[ri.Read] == NoTime {
			continue
		}
		solved, ok := w.MappedWrite[ri.Read]
		if !ok {
			continue
		}
		recorded := NoRef
		var recordedAt int64 = -1
		for _, wr := range ri.AllRivals() {
			if recordedTimes[wr] == NoTime {
				continue
			}
			a, b := sys.SAP(wr), sys.SAP(ri.Read)
			if def := definitelySameAddr(a, b); !def {
				continue
			}
			if recordedTimes[wr] < recordedTimes[ri.Read] && recordedTimes[wr] > recordedAt {
				recorded, recordedAt = wr, recordedTimes[wr]
			}
		}
		if recorded == solved {
			continue
		}
		rm := Remap{Read: ri.Read, RecordedWrite: recorded, SolvedWrite: solved}
		if s := sys.SAP(ri.Read); s.Sym != nil {
			if v, ok := w.Env[s.Sym.ID]; ok {
				rm.SolvedValue, rm.SolvedValueOK = v, true
			}
		}
		d.Remaps = append(d.Remaps, rm)
	}
}

func maybeSameAddr(a, b *symexec.SAP) bool {
	if a.Var != b.Var {
		return false
	}
	if a.Addr != symexec.NoAddr && b.Addr != symexec.NoAddr {
		return a.Addr == b.Addr
	}
	return true
}

func definitelySameAddr(a, b *symexec.SAP) bool {
	return a.Var == b.Var && a.Addr != symexec.NoAddr && a.Addr == b.Addr
}

// sapAt renders a SAP identity with its source position.
func sapAt(sys *constraints.System, r constraints.SAPRef) string {
	s := sys.SAP(r)
	id := fmt.Sprintf("t%d#%d %s", s.Thread, s.Seq, s.Kind)
	switch {
	case s.Kind.IsMemory():
		id += fmt.Sprintf(" g%d@%d", s.Var, s.Addr)
	case s.Kind == symexec.SAPLock || s.Kind == symexec.SAPUnlock:
		id += fmt.Sprintf(" m%d", s.Mutex)
	}
	if s.Pos.Line != 0 {
		id += " (line " + s.Pos.String() + ")"
	}
	return id
}

// Render writes the human-readable race-flip report.
func (d *Diff) Render(w io.Writer) {
	fmt.Fprintf(w, "schedule diff: %d of %d conflicting SAP pairs flipped relative to the recorded order\n",
		d.TotalFlips, d.ConflictingPairs)
	if d.TotalFlips == 0 {
		fmt.Fprintf(w, "  the solver preserved the recorded order of every conflicting pair:\n")
		fmt.Fprintf(w, "  the recorded interleaving itself triggers the failure.\n")
		if len(d.racePairs) > 0 {
			fmt.Fprintf(w, "racing pairs (in recorded order):\n")
			for i, f := range d.racePairs {
				fmt.Fprintf(w, "  [%s] %s  ran before  %s\n",
					f.Kind, sapAt(d.sys, f.First), sapAt(d.sys, f.Second))
				if i < len(d.Pivots) && d.Pivots[i].Known {
					if d.Pivots[i].Essential {
						fmt.Fprintf(w, "    reversing this pair admits no failing schedule — its recorded order is the failure's trigger\n")
					} else {
						fmt.Fprintf(w, "    a schedule reversing this pair may still fail (probe inconclusive)\n")
					}
				}
			}
		}
	}
	for _, f := range d.Flips {
		fmt.Fprintf(w, "  [%s] %s  ran before  %s  — solver reversed them\n",
			f.Kind, sapAt(d.sys, f.First), sapAt(d.sys, f.Second))
	}
	if d.TotalFlips > len(d.Flips) {
		fmt.Fprintf(w, "  … and %d more flipped pairs\n", d.TotalFlips-len(d.Flips))
	}
	if len(d.Remaps) > 0 {
		fmt.Fprintf(w, "reads whose last writer changed (the race made visible):\n")
		for _, rm := range d.Remaps {
			from := "initial value"
			if rm.RecordedWrite != NoRef {
				from = sapAt(d.sys, rm.RecordedWrite)
			}
			to := "initial value"
			if rm.SolvedWrite != NoRef {
				to = sapAt(d.sys, rm.SolvedWrite)
			}
			fmt.Fprintf(w, "  %s: recorded writer %s → solved writer %s", sapAt(d.sys, rm.Read), from, to)
			if rm.SolvedValueOK {
				fmt.Fprintf(w, " (observes %d)", rm.SolvedValue)
			}
			fmt.Fprintln(w)
		}
	}
}
