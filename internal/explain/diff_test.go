package explain_test

import (
	"strings"
	"testing"

	"repro/internal/constraints"
	"repro/internal/explain"
)

// threadMajor builds a recorded-times vector ordering every SAP by
// (thread, seq) — a valid sequential interleaving — and returns it with
// the matching total order.
func threadMajor(sys *constraints.System) ([]int64, []constraints.SAPRef) {
	times := make([]int64, len(sys.SAPs))
	var order []constraints.SAPRef
	t := int64(0)
	for _, th := range sys.Threads {
		for _, r := range th {
			times[r] = t
			order = append(order, r)
			t++
		}
	}
	return times, order
}

func TestDiffSchedulesFlipsAndKinds(t *testing.T) {
	sys := freshSystem(t)
	times, _ := threadMajor(sys)
	// Solved order: reverse thread-major — every cross-thread pair is
	// inverted, so every conflicting pair must flip.
	var order []constraints.SAPRef
	for i := len(sys.Threads) - 1; i >= 0; i-- {
		order = append(order, sys.Threads[i]...)
	}
	d := explain.DiffSchedules(sys, times, order, nil)
	if d.ConflictingPairs == 0 {
		t.Fatal("sim_race should have conflicting pairs")
	}
	if d.TotalFlips != d.ConflictingPairs {
		t.Errorf("full reversal should flip every pair: %d of %d", d.TotalFlips, d.ConflictingPairs)
	}
	kinds := map[string]bool{}
	for _, f := range d.Flips {
		kinds[f.Kind] = true
	}
	if !kinds[explain.FlipRW] {
		t.Error("expected memory flips")
	}
	if !kinds[explain.FlipSync] {
		t.Error("expected sync flips: cross-thread sync pairs all inverted")
	}
	// Memory flips sort before sync flips.
	sawSync := false
	for _, f := range d.Flips {
		if f.Kind == explain.FlipSync {
			sawSync = true
		} else if f.Kind == explain.FlipRW && sawSync {
			t.Fatal("memory flip after sync flip: sort order broken")
		}
	}
	var sb strings.Builder
	d.Render(&sb)
	if !strings.Contains(sb.String(), "solver reversed them") {
		t.Errorf("render missing flip lines:\n%s", sb.String())
	}
}

func TestDiffSchedulesZeroFlipVerdict(t *testing.T) {
	sys := freshSystem(t)
	times, order := threadMajor(sys)
	// Solved order identical to recorded: no flips, and the verdict must
	// say the recorded interleaving itself triggers the failure, naming
	// the racing pairs.
	d := explain.DiffSchedules(sys, times, order, nil)
	if d.TotalFlips != 0 {
		t.Fatalf("identical orders flipped %d pairs", d.TotalFlips)
	}
	var sb strings.Builder
	d.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "recorded interleaving itself triggers the failure") {
		t.Errorf("missing zero-flip verdict:\n%s", out)
	}
	if !strings.Contains(out, "racing pairs (in recorded order):") {
		t.Errorf("zero-flip verdict should name the racing pairs:\n%s", out)
	}
}

func TestProbeReversalEssential(t *testing.T) {
	sys := freshSystem(t)
	if len(sys.HardEdges) == 0 {
		t.Fatal("system has no hard edges")
	}
	// Reversing a pair that a hard edge already orders creates a cycle:
	// the oracle must prove the reversal inadmissible.
	e := sys.HardEdges[0]
	p := explain.ProbeReversal(sys, e[0], e[1], 0)
	if !p.Known || !p.Essential {
		t.Fatalf("hard-edge reversal should be provably essential, got known=%v essential=%v",
			p.Known, p.Essential)
	}
}
