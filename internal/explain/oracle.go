package explain

import (
	"repro/internal/constraints"
	"repro/internal/ir"
	"repro/internal/symbolic"
	"repro/internal/symexec"
)

// The deletion oracle behind the minimal-unsat-subset shrinker.
//
// The production solvers cannot play this role: their completion paths
// re-validate candidate schedules against the FULL constraint semantics
// (constraints.ValidateSchedule simulates every lock, every memory cell
// and every path condition regardless of what the caller "dropped"), so
// deleting a constraint group would not actually weaken what they check —
// and delete-based shrinking is only sound over a monotone oracle: any
// formula a subset rejects, the subset's supersets must also reject.
//
// oracle is instead a small backtracking satisfiability check that
// enforces exactly the retained groups and nothing else:
//
//   - retained hard-edge groups (Fmo, Fso spawn/order) feed an order
//     graph; a cycle means unsat,
//   - retained wait groups choose a waking signal (plain signals wake at
//     most one retained wait),
//   - retained lock groups order each cross-thread region pair,
//   - retained read groups (Frw) choose a last writer (or the initial
//     value) with the interval side-constraints over
//     definitely-same-address rivals,
//   - retained Fpath/Fbug conjuncts are evaluated at the leaves under the
//     decided read values; a conjunct referencing a symbol no retained
//     group binds (a dropped read's value) is SKIPPED.
//
// Skipping unbindable conjuncts and unconstrained maybe-same-address
// rivals over-approximates satisfiability, which keeps the shrinker
// sound: oracle-unsat implies genuinely conflicting retained groups. The
// rival placement uses the same two-variant approximation as the
// production sequential solver (all free rivals before the chosen write,
// or all after the read), so "minimal" is relative to this procedure; see
// DESIGN.md for the full argument. A budget bounds the search; exhaustion
// reports unknown and the shrinker then conservatively keeps the group.

// verdict is the oracle's three-valued answer.
type verdict int8

const (
	vUnsat verdict = iota
	vSat
	vUnknown // budget exhausted
)

// oracle is one satisfiability check over a retained subset of groups.
type oracle struct {
	sys    *constraints.System
	budget int64

	// Retained structure, derived from the kept groups.
	lockMutexes []ir.SyncID
	waitIdx     []int
	readIdx     []int
	conj        []symbolic.Expr

	g *diGraph

	env        symbolic.MapEnv
	mappedTo   map[constraints.SAPRef]constraints.SAPRef // read -> write (NoRef = init)
	usedSignal map[constraints.SAPRef]bool

	decs []oDecision
}

type oDecision struct {
	kind   int // 0 wait, 1 read, 2 lock pair
	idx    int // wait index / read index
	ra, rb constraints.Region
}

// check runs the satisfiability check for the retained groups.
func check(sys *constraints.System, groups []constraints.Group, keep []bool, budget int64) verdict {
	o := &oracle{
		sys: sys, budget: budget,
		g:          newDiGraph(len(sys.SAPs)),
		env:        symbolic.MapEnv{},
		mappedTo:   map[constraints.SAPRef]constraints.SAPRef{},
		usedSignal: map[constraints.SAPRef]bool{},
	}
	for i, grp := range groups {
		if !keep[i] {
			continue
		}
		switch grp.Kind {
		case constraints.GroupMO, constraints.GroupSpawn, constraints.GroupOrder:
			for _, e := range grp.Edges {
				if !o.g.addEdge(e[0], e[1]) {
					return vUnsat // retained hard edges alone are cyclic
				}
			}
		case constraints.GroupLock:
			o.lockMutexes = append(o.lockMutexes, grp.Mutex)
		case constraints.GroupWait:
			o.waitIdx = append(o.waitIdx, grp.Index)
		case constraints.GroupRW:
			o.readIdx = append(o.readIdx, grp.Index)
		case constraints.GroupPath, constraints.GroupBug:
			o.conj = append(o.conj, grp.Exprs...)
		}
	}

	// Pre-pass: a retained conjunct that already evaluates under the
	// empty environment (no symbols, or constant-folded) decides the
	// check without any search — the common shape of a contradictory
	// Fbug, and the reason dropping unrelated groups stays cheap.
	for _, c := range o.conj {
		if v, err := symbolic.EvalBool(c, o.env); err == nil && !v {
			return vUnsat
		}
	}

	// Decision agenda: waits, then reads, then lock-region pairs —
	// mirroring the production solver's order (wait mappings prune the
	// most; lock pairs mostly follow from the rest).
	for _, wi := range o.waitIdx {
		o.decs = append(o.decs, oDecision{kind: 0, idx: wi})
	}
	for _, ri := range o.readIdx {
		o.decs = append(o.decs, oDecision{kind: 1, idx: ri})
	}
	for _, m := range o.lockMutexes {
		regs := sys.Regions[m]
		for i := 0; i < len(regs); i++ {
			for j := i + 1; j < len(regs); j++ {
				if regs[i].Thread == regs[j].Thread {
					continue
				}
				o.decs = append(o.decs, oDecision{kind: 2, ra: regs[i], rb: regs[j]})
			}
		}
	}
	return o.decide(0)
}

// decide assigns decision i and recurses; three-valued.
func (o *oracle) decide(i int) verdict {
	o.budget--
	if o.budget <= 0 {
		return vUnknown
	}
	if i == len(o.decs) {
		return o.leaf()
	}
	d := o.decs[i]
	unknown := false
	try := func(f func() bool) verdict {
		mark := o.g.mark()
		if f() {
			switch v := o.decide(i + 1); v {
			case vSat:
				return vSat
			case vUnknown:
				unknown = true
			}
		}
		o.g.undoTo(mark)
		return vUnsat
	}
	switch d.kind {
	case 0: // wait: choose the waking signal
		wi := o.sys.Waits[d.idx]
		for _, cand := range wi.Cands {
			cand := cand
			if o.usedSignal[cand] {
				continue
			}
			plain := o.sys.SAP(cand).Kind == symexec.SAPSignal
			if plain {
				o.usedSignal[cand] = true
			}
			v := try(func() bool {
				return o.g.addEdge(wi.Begin, cand) && o.g.addEdge(cand, wi.End)
			})
			if plain {
				delete(o.usedSignal, cand)
			}
			if v == vSat {
				return vSat
			}
		}
	case 1: // read: choose the last writer (or the initial value)
		ri := o.sys.Reads[d.idx]
		r := ri.Read
		rs := o.sys.SAP(r)
		if !ri.NoInit {
			v := try(func() bool {
				// Initial value: every definitely-same-address rival is
				// after the read.
				for _, wr := range ri.AllRivals() {
					if definitelySameAddr(o.sys.SAP(wr), rs) && !o.g.addEdge(r, wr) {
						return false
					}
				}
				o.bindRead(r, NoRef, ri.Init)
				return true
			})
			o.unbindRead(r, rs)
			if v == vSat {
				return vSat
			}
		}
		for _, w := range ri.Cands {
			w := w
			ws := o.sys.SAP(w)
			if rs.Addr != symexec.NoAddr && ws.Addr != symexec.NoAddr && ws.Addr != rs.Addr {
				continue
			}
			for variant := 0; variant < 2; variant++ {
				variant := variant
				v := try(func() bool {
					if !o.g.addEdge(w, r) {
						return false
					}
					for _, rv := range ri.AllRivals() {
						if rv == w || !definitelySameAddr(o.sys.SAP(rv), rs) {
							continue
						}
						var ok bool
						if variant == 0 {
							ok = o.g.addEdge(rv, w) // rival before the writer
						} else {
							ok = o.g.addEdge(r, rv) // rival after the read
						}
						if !ok {
							return false
						}
					}
					o.bindRead(r, w, 0)
					return true
				})
				o.unbindRead(r, rs)
				if v == vSat {
					return vSat
				}
			}
		}
	case 2: // lock-region pair: one region entirely before the other
		a, b := d.ra, d.rb
		if a.HasUnlock {
			if v := try(func() bool { return o.g.addEdge(a.Unlock, b.Lock) }); v == vSat {
				return vSat
			}
		}
		if b.HasUnlock {
			if v := try(func() bool { return o.g.addEdge(b.Unlock, a.Lock) }); v == vSat {
				return vSat
			}
		}
		if !a.HasUnlock && !b.HasUnlock {
			// Two never-released regions on one mutex cannot both exist.
			return vUnsat
		}
	}
	if unknown {
		return vUnknown
	}
	return vUnsat
}

// bindRead records a read's mapping; init-value mappings bind the symbol
// immediately, write mappings resolve at the leaf.
func (o *oracle) bindRead(r, w constraints.SAPRef, initVal int64) {
	o.mappedTo[r] = w
	if w == NoRef {
		if s := o.sys.SAP(r); s.Sym != nil {
			o.env[s.Sym.ID] = initVal
		}
	}
}

func (o *oracle) unbindRead(r constraints.SAPRef, rs *symexec.SAP) {
	delete(o.mappedTo, r)
	if rs.Sym != nil {
		delete(o.env, rs.Sym.ID)
	}
}

// leaf evaluates the retained conjuncts under the decided read values.
func (o *oracle) leaf() verdict {
	// Fixpoint-resolve write-mapped reads: a write's value expression may
	// reference other reads' symbols, so iterate until no progress. The
	// bindings added here are leaf-local and removed on the way out
	// (init-value bindings stay owned by bindRead/unbindRead).
	var added []symbolic.SymID
	for {
		progress := false
		for r, w := range o.mappedTo {
			if w == NoRef {
				continue
			}
			s := o.sys.SAP(r)
			if s.Sym == nil {
				continue
			}
			if _, ok := o.env[s.Sym.ID]; ok {
				continue
			}
			v, err := symbolic.EvalInt(o.sys.SAP(w).Val, o.env)
			if err != nil {
				continue // depends on a still-unresolved or dropped read
			}
			o.env[s.Sym.ID] = v
			added = append(added, s.Sym.ID)
			progress = true
		}
		if !progress {
			break
		}
	}
	defer func() {
		for _, id := range added {
			delete(o.env, id)
		}
	}()
	for _, c := range o.conj {
		o.budget--
		if o.budget <= 0 {
			return vUnknown
		}
		v, err := symbolic.EvalBool(c, o.env)
		if err != nil {
			continue // references a value no retained group determines
		}
		if !v {
			return vUnsat
		}
	}
	return vSat
}
