// Package ir defines the register-based intermediate representation the
// mini language is compiled to, playing the role of LLVM bitcode in the
// paper's toolchain.
//
// Each function is a control-flow graph of basic blocks. Every block ends
// in exactly one terminator (Jump, Branch or Return). Logical && and || are
// lowered to control flow, so every branch in the IR corresponds to one
// recorded Ball–Larus branch decision and one path-condition conjunct.
//
// Loads and stores of global scalars and arrays are explicit instructions;
// they are the candidate shared access points (SAPs). Thread-local
// variables live in virtual registers and never appear as memory
// operations, which is what makes CLAP's thread-local logging cheap.
package ir

import (
	"fmt"
	"strings"

	"repro/internal/minic"
	"repro/internal/symbolic"
)

// Reg is a virtual register index within a function frame.
type Reg int32

// NoReg marks an absent register operand (e.g. a discarded call result).
const NoReg Reg = -1

// GlobalID indexes Program.Globals.
type GlobalID int32

// SyncID indexes Program.Mutexes or Program.Conds depending on context.
type SyncID int32

// FuncID indexes Program.Funcs.
type FuncID int32

// BlockID numbers blocks within a function, entry first.
type BlockID int32

// GlobalVar is a global integer scalar (Size == 0) or array (Size > 0).
type GlobalVar struct {
	Name string
	Size int
	Init int64
}

// IsArray reports whether the global is an array.
func (g GlobalVar) IsArray() bool { return g.Size > 0 }

// Program is a lowered compilation unit.
type Program struct {
	Globals []GlobalVar
	Mutexes []string
	Conds   []string
	Funcs   []*Func
	// MainID is the index of func main.
	MainID FuncID
}

// GlobalByName returns the id of the named global, or -1.
func (p *Program) GlobalByName(name string) GlobalID {
	for i, g := range p.Globals {
		if g.Name == name {
			return GlobalID(i)
		}
	}
	return -1
}

// FuncByName returns the id of the named function, or -1.
func (p *Program) FuncByName(name string) FuncID {
	for i, f := range p.Funcs {
		if f.Name == name {
			return FuncID(i)
		}
	}
	return -1
}

// Func is one lowered function.
type Func struct {
	ID        FuncID
	Name      string
	NumParams int
	// NumRegs is the frame size; registers [0,NumParams) hold arguments.
	NumRegs int
	Blocks  []*Block
	// Entry is Blocks[0].
	Entry *Block
}

// Block is a basic block: a straight-line instruction list plus one
// terminator.
type Block struct {
	ID     BlockID
	Instrs []Instr
	Term   Terminator
}

// Succs returns the successor blocks in terminator order.
func (b *Block) Succs() []*Block {
	switch t := b.Term.(type) {
	case *Jump:
		return []*Block{t.Target}
	case *Branch:
		return []*Block{t.Then, t.Else}
	case *Return:
		return nil
	}
	return nil
}

// BuiltinKind enumerates the runtime builtins.
type BuiltinKind uint8

// Builtin kinds.
const (
	BuiltinLock BuiltinKind = iota
	BuiltinUnlock
	BuiltinWait
	BuiltinSignal
	BuiltinBroadcast
	BuiltinJoin
	BuiltinYield
	BuiltinFence
	BuiltinPrint
	BuiltinInput
)

var builtinNames = map[BuiltinKind]string{
	BuiltinLock: "lock", BuiltinUnlock: "unlock", BuiltinWait: "wait",
	BuiltinSignal: "signal", BuiltinBroadcast: "broadcast",
	BuiltinJoin: "join", BuiltinYield: "yield", BuiltinFence: "fence",
	BuiltinPrint: "print", BuiltinInput: "input",
}

// String returns the builtin's source-level name.
func (b BuiltinKind) String() string { return builtinNames[b] }

// IsSync reports whether the builtin is a synchronization operation that
// participates in Fso (the paper's synchronization order constraints).
func (b BuiltinKind) IsSync() bool {
	switch b {
	case BuiltinLock, BuiltinUnlock, BuiltinWait, BuiltinSignal,
		BuiltinBroadcast, BuiltinJoin, BuiltinYield, BuiltinFence:
		return true
	}
	return false
}

// Instr is a non-terminator instruction.
type Instr interface {
	instr()
	// String renders the instruction for dumps and tests.
	String() string
}

// Terminator ends a basic block.
type Terminator interface {
	term()
	// String renders the terminator.
	String() string
}

// Const loads an integer constant into Dst.
type Const struct {
	Dst Reg
	V   int64
}

// ConstBool loads a boolean constant into Dst.
type ConstBool struct {
	Dst Reg
	V   bool
}

// Mov copies Src to Dst.
type Mov struct {
	Dst, Src Reg
}

// UnOp applies a unary operator. Op is OpNeg or OpNot.
type UnOp struct {
	Dst, X Reg
	Op     symbolic.Op
}

// BinOp applies a non-logical binary operator (logical ones are lowered to
// control flow).
type BinOp struct {
	Dst, X, Y Reg
	Op        symbolic.Op
}

// LoadG loads a global scalar. This is a read-SAP candidate.
type LoadG struct {
	Dst    Reg
	Global GlobalID
	Pos    minic.Pos
}

// StoreG stores to a global scalar. This is a write-SAP candidate.
type StoreG struct {
	Global GlobalID
	Src    Reg
	Pos    minic.Pos
}

// LoadA loads an element of a global array. Read-SAP candidate.
type LoadA struct {
	Dst, Idx Reg
	Array    GlobalID
	Pos      minic.Pos
}

// StoreA stores to an element of a global array. Write-SAP candidate.
type StoreA struct {
	Array    GlobalID
	Idx, Src Reg
	Pos      minic.Pos
}

// Call invokes a user function. Dst may be NoReg when the result is unused.
type Call struct {
	Dst  Reg
	Func FuncID
	Args []Reg
}

// Spawn starts a new thread running Func and stores the handle in Dst.
type Spawn struct {
	Dst  Reg
	Func FuncID
	Args []Reg
	Pos  minic.Pos
}

// SyncOp is a synchronization builtin: lock/unlock (Obj is a mutex id),
// wait (Obj is the cond id, Obj2 the mutex id), signal/broadcast (cond id),
// join (Arg holds the thread handle), yield and fence (no operands).
type SyncOp struct {
	Kind BuiltinKind
	Obj  SyncID
	Obj2 SyncID
	Arg  Reg
	Pos  minic.Pos
}

// Print writes the register's value to the VM's output.
type Print struct {
	Src Reg
}

// Input loads the K-th deterministic program input into Dst (paper §5:
// program input is deterministic and replayed as-is).
type Input struct {
	Dst Reg
	K   Reg
}

// Assert checks Cond; a false value is the concurrency failure CLAP
// reproduces. Site uniquely identifies the assertion in the program.
type Assert struct {
	Cond Reg
	Msg  string
	Site int
	Pos  minic.Pos
}

func (*Const) instr()     {}
func (*ConstBool) instr() {}
func (*Mov) instr()       {}
func (*UnOp) instr()      {}
func (*BinOp) instr()     {}
func (*LoadG) instr()     {}
func (*StoreG) instr()    {}
func (*LoadA) instr()     {}
func (*StoreA) instr()    {}
func (*Call) instr()      {}
func (*Spawn) instr()     {}
func (*SyncOp) instr()    {}
func (*Print) instr()     {}
func (*Input) instr()     {}
func (*Assert) instr()    {}

// Jump transfers control unconditionally.
type Jump struct {
	Target *Block
}

// Branch transfers control on a boolean register.
type Branch struct {
	Cond       Reg
	Then, Else *Block
	Pos        minic.Pos
}

// Return leaves the function. Src is NoReg for a bare return.
type Return struct {
	Src Reg
}

func (*Jump) term()   {}
func (*Branch) term() {}
func (*Return) term() {}

// String implementations (kept dense; used by dumps and golden tests).

func (i *Const) String() string     { return fmt.Sprintf("r%d = const %d", i.Dst, i.V) }
func (i *ConstBool) String() string { return fmt.Sprintf("r%d = const %t", i.Dst, i.V) }
func (i *Mov) String() string       { return fmt.Sprintf("r%d = r%d", i.Dst, i.Src) }
func (i *UnOp) String() string      { return fmt.Sprintf("r%d = %s r%d", i.Dst, i.Op, i.X) }
func (i *BinOp) String() string {
	return fmt.Sprintf("r%d = r%d %s r%d", i.Dst, i.X, i.Op, i.Y)
}
func (i *LoadG) String() string  { return fmt.Sprintf("r%d = loadg g%d", i.Dst, i.Global) }
func (i *StoreG) String() string { return fmt.Sprintf("storeg g%d = r%d", i.Global, i.Src) }
func (i *LoadA) String() string {
	return fmt.Sprintf("r%d = loada g%d[r%d]", i.Dst, i.Array, i.Idx)
}
func (i *StoreA) String() string {
	return fmt.Sprintf("storea g%d[r%d] = r%d", i.Array, i.Idx, i.Src)
}
func (i *Call) String() string {
	return fmt.Sprintf("r%d = call f%d%s", i.Dst, i.Func, regList(i.Args))
}
func (i *Spawn) String() string {
	return fmt.Sprintf("r%d = spawn f%d%s", i.Dst, i.Func, regList(i.Args))
}
func (i *SyncOp) String() string {
	switch i.Kind {
	case BuiltinWait:
		return fmt.Sprintf("wait c%d m%d", i.Obj, i.Obj2)
	case BuiltinJoin:
		return fmt.Sprintf("join r%d", i.Arg)
	case BuiltinYield, BuiltinFence:
		return i.Kind.String()
	case BuiltinSignal, BuiltinBroadcast:
		return fmt.Sprintf("%s c%d", i.Kind, i.Obj)
	default:
		return fmt.Sprintf("%s m%d", i.Kind, i.Obj)
	}
}
func (i *Print) String() string  { return fmt.Sprintf("print r%d", i.Src) }
func (i *Input) String() string  { return fmt.Sprintf("r%d = input r%d", i.Dst, i.K) }
func (i *Assert) String() string { return fmt.Sprintf("assert r%d %q", i.Cond, i.Msg) }

func (t *Jump) String() string { return fmt.Sprintf("jump b%d", t.Target.ID) }
func (t *Branch) String() string {
	return fmt.Sprintf("branch r%d b%d b%d", t.Cond, t.Then.ID, t.Else.ID)
}
func (t *Return) String() string {
	if t.Src == NoReg {
		return "return"
	}
	return fmt.Sprintf("return r%d", t.Src)
}

func regList(rs []Reg) string {
	var sb strings.Builder
	sb.WriteString("(")
	for i, r := range rs {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "r%d", r)
	}
	sb.WriteString(")")
	return sb.String()
}

// Dump renders the whole function for debugging and golden tests.
func (f *Func) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (params=%d regs=%d)\n", f.Name, f.NumParams, f.NumRegs)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.ID)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
		fmt.Fprintf(&sb, "  %s\n", b.Term)
	}
	return sb.String()
}

// Dump renders the whole program.
func (p *Program) Dump() string {
	var sb strings.Builder
	for i, g := range p.Globals {
		if g.IsArray() {
			fmt.Fprintf(&sb, "g%d: int %s[%d] = %d\n", i, g.Name, g.Size, g.Init)
		} else {
			fmt.Fprintf(&sb, "g%d: int %s = %d\n", i, g.Name, g.Init)
		}
	}
	for i, m := range p.Mutexes {
		fmt.Fprintf(&sb, "m%d: mutex %s\n", i, m)
	}
	for i, c := range p.Conds {
		fmt.Fprintf(&sb, "c%d: cond %s\n", i, c)
	}
	for _, f := range p.Funcs {
		sb.WriteString(f.Dump())
	}
	return sb.String()
}

// MaxLockSetMutexes is the LockSet capacity: mutexes with ids at or above
// it never enter a set, which degrades the lockset analysis to "unknown"
// (conservatively unprotected) for them instead of miscounting.
const MaxLockSetMutexes = 64

// LockSet is a per-instruction lock summary: a set of mutexes encoded as a
// bitmask over ir.SyncID. The static lockset analysis annotates every
// instruction with the mutexes provably held there.
type LockSet uint64

// AllLocks returns the set of every representable mutex of the program.
func AllLocks(p *Program) LockSet {
	n := len(p.Mutexes)
	if n >= MaxLockSetMutexes {
		return ^LockSet(0)
	}
	return LockSet(1)<<uint(n) - 1
}

// Has reports whether mutex m is in the set.
func (s LockSet) Has(m SyncID) bool {
	return m >= 0 && m < MaxLockSetMutexes && s&(1<<uint(m)) != 0
}

// With returns the set plus mutex m (unchanged for unrepresentable ids).
func (s LockSet) With(m SyncID) LockSet {
	if m < 0 || m >= MaxLockSetMutexes {
		return s
	}
	return s | 1<<uint(m)
}

// Without returns the set minus mutex m.
func (s LockSet) Without(m SyncID) LockSet {
	if m < 0 || m >= MaxLockSetMutexes {
		return s
	}
	return s &^ (1 << uint(m))
}

// Inter returns the intersection with o.
func (s LockSet) Inter(o LockSet) LockSet { return s & o }

// Union returns the union with o.
func (s LockSet) Union(o LockSet) LockSet { return s | o }

// Empty reports whether the set holds no mutex.
func (s LockSet) Empty() bool { return s == 0 }

// Names renders the set as "{a,b}" using the program's mutex names, in
// ascending id order.
func (s LockSet) Names(p *Program) string {
	var sb strings.Builder
	sb.WriteString("{")
	first := true
	for m := range p.Mutexes {
		if !s.Has(SyncID(m)) {
			continue
		}
		if !first {
			sb.WriteString(",")
		}
		first = false
		sb.WriteString(p.Mutexes[m])
	}
	sb.WriteString("}")
	return sb.String()
}

// PosOf returns the source position an instruction carries, or the zero
// position for instructions lowered without one (register moves etc.).
func PosOf(in Instr) minic.Pos {
	switch x := in.(type) {
	case *LoadG:
		return x.Pos
	case *StoreG:
		return x.Pos
	case *LoadA:
		return x.Pos
	case *StoreA:
		return x.Pos
	case *Spawn:
		return x.Pos
	case *SyncOp:
		return x.Pos
	case *Assert:
		return x.Pos
	}
	return minic.Pos{}
}

// BackEdges returns the back edges of f's CFG discovered by DFS: edges
// (from, to) where to is an ancestor of from on the DFS stack. Ball–Larus
// instrumentation places loop re-entry points on these edges.
func (f *Func) BackEdges() map[[2]BlockID]bool {
	back := map[[2]BlockID]bool{}
	state := make([]int, len(f.Blocks)) // 0 unvisited, 1 on stack, 2 done
	var dfs func(b *Block)
	dfs = func(b *Block) {
		state[b.ID] = 1
		for _, s := range b.Succs() {
			switch state[s.ID] {
			case 0:
				dfs(s)
			case 1:
				back[[2]BlockID{b.ID, s.ID}] = true
			}
		}
		state[b.ID] = 2
	}
	dfs(f.Entry)
	return back
}

// ReversePostorder returns f's blocks in reverse postorder from the entry,
// the canonical order for forward dataflow and for Ball–Larus numbering of
// the acyclic (back-edge-removed) CFG.
func (f *Func) ReversePostorder() []*Block {
	seen := make([]bool, len(f.Blocks))
	var order []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.ID] = true
		for _, s := range b.Succs() {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(f.Entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}
