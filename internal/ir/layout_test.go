package ir

import "testing"

func TestLayout(t *testing.T) {
	p := compile(t, `
int a;
int b[4] = 7;
int c;
func main() { a = 1; }
`)
	l := NewLayout(p)
	if l.Size != 6 {
		t.Fatalf("size = %d, want 6", l.Size)
	}
	if l.Base[0] != 0 || l.Base[1] != 1 || l.Base[2] != 5 {
		t.Fatalf("bases = %v", l.Base)
	}
	for addr, want := range []GlobalID{0, 1, 1, 1, 1, 2} {
		if l.VarOf[addr] != want {
			t.Errorf("VarOf[%d] = %d, want %d", addr, l.VarOf[addr], want)
		}
	}
	mem := l.InitImage(p)
	if mem[0] != 0 || mem[1] != 7 || mem[4] != 7 || mem[5] != 0 {
		t.Errorf("init image = %v", mem)
	}

	if a, ok := l.Addr(p, 1, 2); !ok || a != 3 {
		t.Errorf("Addr(b,2) = %d,%v", a, ok)
	}
	if _, ok := l.Addr(p, 1, 4); ok {
		t.Error("out-of-bounds array address accepted")
	}
	if _, ok := l.Addr(p, 1, -1); ok {
		t.Error("negative index accepted")
	}
	if a, ok := l.Addr(p, 0, 0); !ok || a != 0 {
		t.Errorf("Addr(a,0) = %d,%v", a, ok)
	}
	if _, ok := l.Addr(p, 0, 1); ok {
		t.Error("scalar with nonzero index accepted")
	}
}
