package ir

import (
	"fmt"

	"repro/internal/minic"
	"repro/internal/symbolic"
)

// Lower compiles a checked AST program to IR.
func Lower(ast *minic.Program) (*Program, error) {
	p := &Program{}
	for _, g := range ast.Globals {
		p.Globals = append(p.Globals, GlobalVar{Name: g.Name, Size: g.Size, Init: g.Init})
	}
	for _, m := range ast.Mutexes {
		p.Mutexes = append(p.Mutexes, m.Name)
	}
	for _, c := range ast.Conds {
		p.Conds = append(p.Conds, c.Name)
	}
	// Declare all functions first so calls and spawns resolve by id.
	for i, f := range ast.Funcs {
		p.Funcs = append(p.Funcs, &Func{
			ID:        FuncID(i),
			Name:      f.Name,
			NumParams: len(f.Params),
		})
	}
	p.MainID = p.FuncByName("main")
	lw := &lowerer{prog: p, ast: ast}
	for i, f := range ast.Funcs {
		if err := lw.lowerFunc(p.Funcs[i], f); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// CompileSource parses, checks and lowers mini-language source in one step.
func CompileSource(src string) (*Program, error) {
	ast, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(ast)
}

type lowerer struct {
	prog       *Program
	ast        *minic.Program
	fn         *Func
	cur        *Block
	nextReg    Reg
	scopes     []map[string]Reg
	assertSite int
}

func (lw *lowerer) errf(pos minic.Pos, format string, args ...any) error {
	return &minic.Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (lw *lowerer) newBlock() *Block {
	b := &Block{ID: BlockID(len(lw.fn.Blocks))}
	lw.fn.Blocks = append(lw.fn.Blocks, b)
	return b
}

func (lw *lowerer) fresh() Reg {
	r := lw.nextReg
	lw.nextReg++
	return r
}

func (lw *lowerer) emit(in Instr) {
	lw.cur.Instrs = append(lw.cur.Instrs, in)
}

// setTerm terminates the current block and switches to next (which may be
// nil when control cannot continue).
func (lw *lowerer) setTerm(t Terminator, next *Block) {
	lw.cur.Term = t
	lw.cur = next
}

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, map[string]Reg{}) }
func (lw *lowerer) popScope()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *lowerer) declare(name string) Reg {
	r := lw.fresh()
	lw.scopes[len(lw.scopes)-1][name] = r
	return r
}

// lookupLocal resolves name to a register, innermost scope first.
func (lw *lowerer) lookupLocal(name string) (Reg, bool) {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if r, ok := lw.scopes[i][name]; ok {
			return r, true
		}
	}
	return 0, false
}

func (lw *lowerer) lowerFunc(fn *Func, decl *minic.FuncDecl) error {
	lw.fn = fn
	lw.nextReg = 0
	lw.scopes = nil
	lw.pushScope()
	entry := lw.newBlock()
	fn.Entry = entry
	lw.cur = entry
	for _, p := range decl.Params {
		lw.declare(p) // registers 0..NumParams-1 in order
	}
	if err := lw.lowerBlock(decl.Body); err != nil {
		return err
	}
	// Fall off the end: implicit return 0.
	if lw.cur != nil {
		lw.setTerm(&Return{Src: NoReg}, nil)
	}
	lw.popScope()
	fn.NumRegs = int(lw.nextReg)
	lw.prune(fn)
	return nil
}

// prune removes unreachable blocks, gives every remaining block a
// terminator, and renumbers block ids densely.
func (lw *lowerer) prune(fn *Func) {
	reach := map[*Block]bool{}
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		if b.Term == nil {
			b.Term = &Return{Src: NoReg}
		}
		for _, s := range b.Succs() {
			dfs(s)
		}
	}
	dfs(fn.Entry)
	var kept []*Block
	for _, b := range fn.Blocks {
		if reach[b] {
			b.ID = BlockID(len(kept))
			kept = append(kept, b)
		}
	}
	fn.Blocks = kept
}

func (lw *lowerer) lowerBlock(b *minic.BlockStmt) error {
	lw.pushScope()
	defer lw.popScope()
	for _, s := range b.Stmts {
		if lw.cur == nil {
			// Code after return in the same block: unreachable; stop.
			return nil
		}
		if err := lw.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) lowerStmt(s minic.Stmt) error {
	switch st := s.(type) {
	case *minic.BlockStmt:
		return lw.lowerBlock(st)
	case *minic.VarDeclStmt:
		var val Reg
		if st.Init != nil {
			v, err := lw.lowerExpr(st.Init)
			if err != nil {
				return err
			}
			val = v
		} else {
			val = lw.fresh()
			lw.emit(&Const{Dst: val, V: 0})
		}
		dst := lw.declare(st.Name)
		lw.emit(&Mov{Dst: dst, Src: val})
		return nil
	case *minic.AssignStmt:
		return lw.lowerAssign(st)
	case *minic.IfStmt:
		return lw.lowerIf(st)
	case *minic.WhileStmt:
		return lw.lowerWhile(st)
	case *minic.ForStmt:
		return lw.lowerFor(st)
	case *minic.ReturnStmt:
		src := NoReg
		if st.Value != nil {
			v, err := lw.lowerExpr(st.Value)
			if err != nil {
				return err
			}
			src = v
		}
		lw.setTerm(&Return{Src: src}, nil)
		return nil
	case *minic.AssertStmt:
		cond, err := lw.lowerExpr(st.Cond)
		if err != nil {
			return err
		}
		lw.assertSite++
		lw.emit(&Assert{Cond: cond, Msg: st.Msg, Site: lw.assertSite, Pos: st.Pos})
		return nil
	case *minic.ExprStmt:
		_, err := lw.lowerExpr(st.X)
		return err
	}
	return lw.errf(s.StmtPos(), "unknown statement")
}

func (lw *lowerer) lowerAssign(a *minic.AssignStmt) error {
	val, err := lw.lowerExpr(a.Value)
	if err != nil {
		return err
	}
	if a.Index != nil {
		idx, err := lw.lowerExpr(a.Index)
		if err != nil {
			return err
		}
		gid := lw.prog.GlobalByName(a.Target)
		lw.emit(&StoreA{Array: gid, Idx: idx, Src: val, Pos: a.Pos})
		return nil
	}
	if r, ok := lw.lookupLocal(a.Target); ok {
		lw.emit(&Mov{Dst: r, Src: val})
		return nil
	}
	gid := lw.prog.GlobalByName(a.Target)
	lw.emit(&StoreG{Global: gid, Src: val, Pos: a.Pos})
	return nil
}

func (lw *lowerer) lowerIf(st *minic.IfStmt) error {
	cond, err := lw.lowerExpr(st.Cond)
	if err != nil {
		return err
	}
	thenB := lw.newBlock()
	var elseB *Block
	end := lw.newBlock()
	if st.Else != nil {
		elseB = lw.newBlock()
		lw.setTerm(&Branch{Cond: cond, Then: thenB, Else: elseB, Pos: st.Pos}, thenB)
	} else {
		lw.setTerm(&Branch{Cond: cond, Then: thenB, Else: end, Pos: st.Pos}, thenB)
	}
	if err := lw.lowerBlock(st.Then); err != nil {
		return err
	}
	if lw.cur != nil {
		lw.setTerm(&Jump{Target: end}, nil)
	}
	if st.Else != nil {
		lw.cur = elseB
		if err := lw.lowerStmt(st.Else); err != nil {
			return err
		}
		if lw.cur != nil {
			lw.setTerm(&Jump{Target: end}, nil)
		}
	}
	lw.cur = end
	return nil
}

func (lw *lowerer) lowerWhile(st *minic.WhileStmt) error {
	head := lw.newBlock()
	lw.setTerm(&Jump{Target: head}, head)
	cond, err := lw.lowerExpr(st.Cond)
	if err != nil {
		return err
	}
	body := lw.newBlock()
	end := lw.newBlock()
	lw.setTerm(&Branch{Cond: cond, Then: body, Else: end, Pos: st.Pos}, body)
	if err := lw.lowerBlock(st.Body); err != nil {
		return err
	}
	if lw.cur != nil {
		lw.setTerm(&Jump{Target: head}, nil)
	}
	lw.cur = end
	return nil
}

func (lw *lowerer) lowerFor(st *minic.ForStmt) error {
	if st.Init != nil {
		if err := lw.lowerAssign(st.Init); err != nil {
			return err
		}
	}
	head := lw.newBlock()
	lw.setTerm(&Jump{Target: head}, head)
	var cond Reg
	if st.Cond != nil {
		c, err := lw.lowerExpr(st.Cond)
		if err != nil {
			return err
		}
		cond = c
	} else {
		cond = lw.fresh()
		lw.emit(&ConstBool{Dst: cond, V: true})
	}
	body := lw.newBlock()
	end := lw.newBlock()
	lw.setTerm(&Branch{Cond: cond, Then: body, Else: end, Pos: st.Pos}, body)
	if err := lw.lowerBlock(st.Body); err != nil {
		return err
	}
	if lw.cur != nil {
		if st.Post != nil {
			if err := lw.lowerAssign(st.Post); err != nil {
				return err
			}
		}
		lw.setTerm(&Jump{Target: head}, nil)
	}
	lw.cur = end
	return nil
}

var binOps = map[minic.TokKind]symbolic.Op{
	minic.TokPlus: symbolic.OpAdd, minic.TokMinus: symbolic.OpSub,
	minic.TokStar: symbolic.OpMul, minic.TokSlash: symbolic.OpDiv,
	minic.TokPercent: symbolic.OpRem, minic.TokAmp: symbolic.OpAnd,
	minic.TokPipe: symbolic.OpOr, minic.TokCaret: symbolic.OpXor,
	minic.TokShl: symbolic.OpShl, minic.TokShr: symbolic.OpShr,
	minic.TokEq: symbolic.OpEq, minic.TokNe: symbolic.OpNe,
	minic.TokLt: symbolic.OpLt, minic.TokLe: symbolic.OpLe,
	minic.TokGt: symbolic.OpGt, minic.TokGe: symbolic.OpGe,
}

func (lw *lowerer) lowerExpr(e minic.Expr) (Reg, error) {
	switch x := e.(type) {
	case *minic.NumberLit:
		r := lw.fresh()
		lw.emit(&Const{Dst: r, V: x.Value})
		return r, nil
	case *minic.BoolLit:
		r := lw.fresh()
		lw.emit(&ConstBool{Dst: r, V: x.Value})
		return r, nil
	case *minic.Ident:
		if r, ok := lw.lookupLocal(x.Name); ok {
			return r, nil
		}
		gid := lw.prog.GlobalByName(x.Name)
		r := lw.fresh()
		lw.emit(&LoadG{Dst: r, Global: gid, Pos: x.Pos})
		return r, nil
	case *minic.IndexExpr:
		idx, err := lw.lowerExpr(x.Index)
		if err != nil {
			return 0, err
		}
		gid := lw.prog.GlobalByName(x.Name)
		r := lw.fresh()
		lw.emit(&LoadA{Dst: r, Idx: idx, Array: gid, Pos: x.Pos})
		return r, nil
	case *minic.UnaryExpr:
		v, err := lw.lowerExpr(x.X)
		if err != nil {
			return 0, err
		}
		r := lw.fresh()
		op := symbolic.OpNeg
		if x.Op == minic.TokBang {
			op = symbolic.OpNot
		}
		lw.emit(&UnOp{Dst: r, X: v, Op: op})
		return r, nil
	case *minic.BinaryExpr:
		if x.Op == minic.TokAndAnd || x.Op == minic.TokOrOr {
			return lw.lowerShortCircuit(x)
		}
		a, err := lw.lowerExpr(x.X)
		if err != nil {
			return 0, err
		}
		b, err := lw.lowerExpr(x.Y)
		if err != nil {
			return 0, err
		}
		op, ok := binOps[x.Op]
		if !ok {
			return 0, lw.errf(x.Pos, "unsupported operator %s", x.Op)
		}
		r := lw.fresh()
		lw.emit(&BinOp{Dst: r, X: a, Y: b, Op: op})
		return r, nil
	case *minic.SpawnExpr:
		args, err := lw.lowerArgs(x.Args)
		if err != nil {
			return 0, err
		}
		r := lw.fresh()
		lw.emit(&Spawn{Dst: r, Func: lw.prog.FuncByName(x.Func), Args: args, Pos: x.Pos})
		return r, nil
	case *minic.CallExpr:
		return lw.lowerCall(x)
	}
	return 0, lw.errf(e.ExprPos(), "unknown expression")
}

// lowerShortCircuit lowers && and || into control flow so that the value of
// the right operand is only computed when needed. The result register is
// written on both paths before the join block.
func (lw *lowerer) lowerShortCircuit(x *minic.BinaryExpr) (Reg, error) {
	res := lw.fresh()
	a, err := lw.lowerExpr(x.X)
	if err != nil {
		return 0, err
	}
	rhs := lw.newBlock()
	short := lw.newBlock()
	end := lw.newBlock()
	if x.Op == minic.TokAndAnd {
		lw.setTerm(&Branch{Cond: a, Then: rhs, Else: short, Pos: x.Pos}, short)
		lw.emit(&ConstBool{Dst: res, V: false})
	} else {
		lw.setTerm(&Branch{Cond: a, Then: short, Else: rhs, Pos: x.Pos}, short)
		lw.emit(&ConstBool{Dst: res, V: true})
	}
	lw.setTerm(&Jump{Target: end}, rhs)
	b, err := lw.lowerExpr(x.Y)
	if err != nil {
		return 0, err
	}
	lw.emit(&Mov{Dst: res, Src: b})
	lw.setTerm(&Jump{Target: end}, end)
	return res, nil
}

func (lw *lowerer) lowerArgs(exprs []minic.Expr) ([]Reg, error) {
	var args []Reg
	for _, a := range exprs {
		r, err := lw.lowerExpr(a)
		if err != nil {
			return nil, err
		}
		args = append(args, r)
	}
	return args, nil
}

func (lw *lowerer) lowerCall(x *minic.CallExpr) (Reg, error) {
	if minic.IsBuiltin(x.Name) {
		return lw.lowerBuiltin(x)
	}
	args, err := lw.lowerArgs(x.Args)
	if err != nil {
		return 0, err
	}
	r := lw.fresh()
	lw.emit(&Call{Dst: r, Func: lw.prog.FuncByName(x.Name), Args: args})
	return r, nil
}

func (lw *lowerer) syncID(e minic.Expr, table []string) SyncID {
	name := e.(*minic.Ident).Name
	for i, n := range table {
		if n == name {
			return SyncID(i)
		}
	}
	return -1
}

func (lw *lowerer) lowerBuiltin(x *minic.CallExpr) (Reg, error) {
	zero := func() Reg {
		r := lw.fresh()
		lw.emit(&Const{Dst: r, V: 0})
		return r
	}
	switch x.Name {
	case "lock", "unlock":
		kind := BuiltinLock
		if x.Name == "unlock" {
			kind = BuiltinUnlock
		}
		lw.emit(&SyncOp{Kind: kind, Obj: lw.syncID(x.Args[0], lw.prog.Mutexes), Pos: x.Pos})
		return zero(), nil
	case "wait":
		lw.emit(&SyncOp{
			Kind: BuiltinWait,
			Obj:  lw.syncID(x.Args[0], lw.prog.Conds),
			Obj2: lw.syncID(x.Args[1], lw.prog.Mutexes),
			Pos:  x.Pos,
		})
		return zero(), nil
	case "signal", "broadcast":
		kind := BuiltinSignal
		if x.Name == "broadcast" {
			kind = BuiltinBroadcast
		}
		lw.emit(&SyncOp{Kind: kind, Obj: lw.syncID(x.Args[0], lw.prog.Conds), Pos: x.Pos})
		return zero(), nil
	case "join":
		h, err := lw.lowerExpr(x.Args[0])
		if err != nil {
			return 0, err
		}
		lw.emit(&SyncOp{Kind: BuiltinJoin, Arg: h, Pos: x.Pos})
		return zero(), nil
	case "yield":
		lw.emit(&SyncOp{Kind: BuiltinYield, Pos: x.Pos})
		return zero(), nil
	case "fence":
		lw.emit(&SyncOp{Kind: BuiltinFence, Pos: x.Pos})
		return zero(), nil
	case "print":
		v, err := lw.lowerExpr(x.Args[0])
		if err != nil {
			return 0, err
		}
		lw.emit(&Print{Src: v})
		return zero(), nil
	case "input":
		k, err := lw.lowerExpr(x.Args[0])
		if err != nil {
			return 0, err
		}
		r := lw.fresh()
		lw.emit(&Input{Dst: r, K: k})
		return r, nil
	}
	return 0, lw.errf(x.Pos, "unknown builtin %s", x.Name)
}
