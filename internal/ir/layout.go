package ir

// Layout assigns flat memory addresses to a program's globals: scalars get
// one cell, arrays get Size consecutive cells. The VM, the symbolic
// executor and the constraint encoder all use the same layout so that SAP
// addresses agree across phases.
type Layout struct {
	// Base maps GlobalID to its first cell address.
	Base []int
	// VarOf maps a cell address back to its owning global.
	VarOf []GlobalID
	// Size is the total number of cells.
	Size int
}

// NewLayout computes the layout of prog's globals.
func NewLayout(prog *Program) *Layout {
	l := &Layout{Base: make([]int, len(prog.Globals))}
	for i, g := range prog.Globals {
		l.Base[i] = l.Size
		n := 1
		if g.IsArray() {
			n = g.Size
		}
		for k := 0; k < n; k++ {
			l.VarOf = append(l.VarOf, GlobalID(i))
		}
		l.Size += n
	}
	return l
}

// InitImage returns a fresh memory image with every global at its declared
// initial value.
func (l *Layout) InitImage(prog *Program) []int64 {
	mem := make([]int64, l.Size)
	for i, g := range prog.Globals {
		n := 1
		if g.IsArray() {
			n = g.Size
		}
		for k := 0; k < n; k++ {
			mem[l.Base[i]+k] = g.Init
		}
	}
	return mem
}

// Addr returns the flat address of global g at element idx (idx must be 0
// for scalars); ok is false for out-of-bounds indices.
func (l *Layout) Addr(prog *Program, g GlobalID, idx int64) (int, bool) {
	gv := prog.Globals[g]
	if !gv.IsArray() {
		if idx != 0 {
			return 0, false
		}
		return l.Base[g], true
	}
	if idx < 0 || idx >= int64(gv.Size) {
		return 0, false
	}
	return l.Base[g] + int(idx), true
}
