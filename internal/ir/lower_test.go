package ir

import (
	"strings"
	"testing"
)

func compile(t *testing.T, src string) *Program {
	t.Helper()
	p, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLowerSimple(t *testing.T) {
	p := compile(t, `
int x = 3;
func main() {
	int t;
	t = x + 1;
	x = t;
}
`)
	if p.MainID < 0 {
		t.Fatal("main not found")
	}
	mainFn := p.Funcs[p.MainID]
	dump := mainFn.Dump()
	for _, want := range []string{"loadg g0", "storeg g0"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	if len(mainFn.Blocks) != 1 {
		t.Errorf("straight-line main should be 1 block, got %d", len(mainFn.Blocks))
	}
}

func TestLowerGlobalsAndSync(t *testing.T) {
	p := compile(t, `
int x;
int a[4] = 9;
mutex m;
cond c;
func main() {
	lock(m);
	a[0] = x;
	x = a[1];
	signal(c);
	unlock(m);
}
`)
	if len(p.Globals) != 2 || !p.Globals[1].IsArray() || p.Globals[1].Init != 9 {
		t.Fatalf("globals wrong: %+v", p.Globals)
	}
	if p.GlobalByName("a") != 1 || p.GlobalByName("zz") != -1 {
		t.Error("GlobalByName broken")
	}
	if p.FuncByName("main") != p.MainID || p.FuncByName("zz") != -1 {
		t.Error("FuncByName broken")
	}
	dump := p.Dump()
	for _, want := range []string{"lock m0", "unlock m0", "signal c0", "loada", "storea"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestLowerIfElse(t *testing.T) {
	p := compile(t, `
int x;
func main() {
	if (x > 0) {
		x = 1;
	} else {
		x = 2;
	}
	x = 3;
}
`)
	fn := p.Funcs[p.MainID]
	// entry (branch), then, else, end
	if len(fn.Blocks) != 4 {
		t.Fatalf("if/else should lower to 4 blocks, got %d:\n%s", len(fn.Blocks), fn.Dump())
	}
	br, ok := fn.Entry.Term.(*Branch)
	if !ok {
		t.Fatalf("entry must end in branch, got %s", fn.Entry.Term)
	}
	if br.Then == br.Else {
		t.Error("branch targets must differ")
	}
}

func TestLowerWhileHasBackEdge(t *testing.T) {
	p := compile(t, `
int n = 5;
func main() {
	int i = 0;
	while (i < 10) {
		i = i + 1;
	}
	n = i;
}
`)
	fn := p.Funcs[p.MainID]
	back := fn.BackEdges()
	if len(back) != 1 {
		t.Fatalf("while loop must have exactly 1 back edge, got %d\n%s", len(back), fn.Dump())
	}
}

func TestLowerForLoop(t *testing.T) {
	p := compile(t, `
int s;
func main() {
	int i;
	for (i = 0; i < 4; i = i + 1) {
		s = s + i;
	}
}
`)
	fn := p.Funcs[p.MainID]
	if len(fn.BackEdges()) != 1 {
		t.Fatalf("for loop must have 1 back edge:\n%s", fn.Dump())
	}
}

func TestLowerNestedLoops(t *testing.T) {
	p := compile(t, `
int s;
func main() {
	int i;
	int j;
	for (i = 0; i < 3; i = i + 1) {
		for (j = 0; j < 3; j = j + 1) {
			s = s + 1;
		}
	}
}
`)
	fn := p.Funcs[p.MainID]
	if got := len(fn.BackEdges()); got != 2 {
		t.Fatalf("nested loops must have 2 back edges, got %d", got)
	}
}

func TestLowerShortCircuit(t *testing.T) {
	p := compile(t, `
int x;
int y;
func main() {
	if (x > 0 && y > 0) {
		x = 1;
	}
	if (x < 0 || y < 0) {
		x = 2;
	}
}
`)
	fn := p.Funcs[p.MainID]
	// Each short-circuit op introduces branches; both loads of y must be in
	// blocks only reached conditionally. Count branches: 2 per if-condition
	// (the && / || branch plus the if branch itself).
	branches := 0
	for _, b := range fn.Blocks {
		if _, ok := b.Term.(*Branch); ok {
			branches++
		}
	}
	if branches < 4 {
		t.Errorf("short-circuit lowering should produce >= 4 branches, got %d\n%s", branches, fn.Dump())
	}
}

func TestLowerSpawnJoinCall(t *testing.T) {
	p := compile(t, `
int x;
func worker(v) {
	x = v;
	return v + 1;
}
func main() {
	int h;
	h = spawn worker(7);
	join(h);
	int r;
	r = worker(1);
}
`)
	dump := p.Funcs[p.MainID].Dump()
	for _, want := range []string{"spawn f0", "join r", "call f0"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	w := p.Funcs[p.FuncByName("worker")]
	if w.NumParams != 1 {
		t.Errorf("worker params = %d, want 1", w.NumParams)
	}
}

func TestLowerReturnPrunesUnreachable(t *testing.T) {
	p := compile(t, `
int x;
func main() {
	return;
	x = 1;
}
`)
	fn := p.Funcs[p.MainID]
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if _, ok := in.(*StoreG); ok {
				t.Fatal("unreachable store must be pruned")
			}
		}
	}
	for i, b := range fn.Blocks {
		if b.Term == nil {
			t.Fatalf("block %d has no terminator", i)
		}
		if int(b.ID) != i {
			t.Fatalf("block ids must be dense after pruning")
		}
	}
}

func TestLowerAssertPrintInput(t *testing.T) {
	p := compile(t, `
int x;
func main() {
	int v;
	v = input(0);
	print(v);
	assert(v >= 0, "neg input");
}
`)
	dump := p.Funcs[p.MainID].Dump()
	for _, want := range []string{"input", "print", `assert`} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestReversePostorderStartsAtEntry(t *testing.T) {
	p := compile(t, `
int x;
func main() {
	if (x > 0) { x = 1; } else { x = 2; }
	while (x < 5) { x = x + 1; }
}
`)
	fn := p.Funcs[p.MainID]
	rpo := fn.ReversePostorder()
	if rpo[0] != fn.Entry {
		t.Fatal("RPO must start at entry")
	}
	if len(rpo) != len(fn.Blocks) {
		t.Fatalf("RPO covers %d blocks, want %d", len(rpo), len(fn.Blocks))
	}
	// In RPO every block appears exactly once.
	seen := map[BlockID]bool{}
	for _, b := range rpo {
		if seen[b.ID] {
			t.Fatalf("block b%d appears twice in RPO", b.ID)
		}
		seen[b.ID] = true
	}
}

func TestTerminatorStrings(t *testing.T) {
	b1 := &Block{ID: 1}
	b2 := &Block{ID: 2}
	if (&Jump{Target: b1}).String() != "jump b1" {
		t.Error("jump renders wrong")
	}
	if (&Branch{Cond: 3, Then: b1, Else: b2}).String() != "branch r3 b1 b2" {
		t.Error("branch renders wrong")
	}
	if (&Return{Src: NoReg}).String() != "return" {
		t.Error("bare return renders wrong")
	}
	if (&Return{Src: 2}).String() != "return r2" {
		t.Error("return renders wrong")
	}
}

func TestBuiltinKindProperties(t *testing.T) {
	if !BuiltinLock.IsSync() || !BuiltinYield.IsSync() || !BuiltinFence.IsSync() {
		t.Error("sync builtins misclassified")
	}
	if BuiltinPrint.IsSync() || BuiltinInput.IsSync() {
		t.Error("print/input are not sync ops")
	}
	if BuiltinWait.String() != "wait" {
		t.Error("builtin name wrong")
	}
}

func TestParamsAreFirstRegisters(t *testing.T) {
	p := compile(t, `
int x;
func f(a, b) {
	x = a + b;
}
func main() { f(1, 2); }
`)
	fn := p.Funcs[p.FuncByName("f")]
	// The body's BinOp must read registers 0 and 1.
	var found bool
	for _, in := range fn.Entry.Instrs {
		if bo, ok := in.(*BinOp); ok {
			if bo.X == 0 && bo.Y == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("params must be lowered into r0, r1:\n%s", fn.Dump())
	}
}
