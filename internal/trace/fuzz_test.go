// Fuzzers for the log decoders: the crash-tolerance story is only as good
// as the decoder's behaviour on arbitrary bytes. Every target asserts the
// two robustness invariants — no panic on any input, and salvage output
// that round-trips cleanly — seeded with real encodings from a recorded
// benchmark run plus hand-built logs covering every event kind.
package trace_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/vm"
)

// lostUpdateSrc is the classic two-thread lost update, the fastest-failing
// benchmark shape: recording it takes milliseconds, so the fuzz corpus can
// be seeded with a genuine recorded log.
const lostUpdateSrc = `
int c;
func worker() {
	int t = c;
	c = t + 1;
}
func main() {
	int h1 = spawn worker();
	int h2 = spawn worker();
	join(h1);
	join(h2);
	int v = c;
	assert(v == 2, "lost update");
}
`

var recordedLog = sync.OnceValue(func() *trace.PathLog {
	prog, err := core.Compile(lostUpdateSrc)
	if err != nil {
		return nil
	}
	rec, err := core.Record(prog, core.RecordOptions{Model: vm.SC, SeedLimit: 2000})
	if err != nil {
		return nil
	}
	return rec.Log
})

// handLog exercises every event kind, run-length runs and cuts.
func handLog() *trace.PathLog {
	l := &trace.PathLog{}
	l.SetThreadMeta(0, -1, 0)
	l.SetThreadMeta(1, 0, 0)
	l.Append(0, trace.Event{Kind: trace.EvEnter, Arg: 0})
	for i := 0; i < 40; i++ {
		l.Append(0, trace.Event{Kind: trace.EvPath, Arg: 5})
	}
	l.Append(0, trace.Event{Kind: trace.EvExit})
	l.Append(1, trace.Event{Kind: trace.EvEnter, Arg: 1})
	l.Append(1, trace.Event{Kind: trace.EvPartial, Arg: 3, Arg2: 2})
	l.AppendCut(1, 7)
	return l
}

func pathLogSeeds() [][]byte {
	logs := []*trace.PathLog{handLog()}
	if rl := recordedLog(); rl != nil {
		logs = append(logs, rl)
	}
	var seeds [][]byte
	for _, l := range logs {
		seeds = append(seeds,
			l.Encode(),
			l.EncodeFramed(trace.FramedOptions{}),
			l.EncodeFramed(trace.FramedOptions{EventsPerFrame: 4}),
		)
	}
	return seeds
}

func FuzzDecodePathLog(f *testing.F) {
	for _, s := range pathLogSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := trace.DecodePathLog(data)
		if err != nil {
			return
		}
		// A successful decode must re-encode and decode to the same log.
		again, err := trace.DecodePathLog(log.Encode())
		if err != nil {
			t.Fatalf("re-decode of a decoded log failed: %v", err)
		}
		if !reflect.DeepEqual(log, again) {
			t.Fatal("flat encoding is not a fixed point")
		}
	})
}

func FuzzDecodePathLogSalvage(f *testing.F) {
	for _, s := range pathLogSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		log, rep := trace.DecodePathLogSalvage(data)
		if log == nil || rep == nil {
			t.Fatal("salvage must always return a log and a report")
		}
		if rep.BytesSalvaged+rep.BytesSkipped != rep.BytesTotal {
			t.Fatalf("salvage byte accounting does not partition the input: %+v", rep)
		}
		// Whatever was salvaged is a well-formed log: re-encoding it framed
		// must decode cleanly and identically (salvage round-trips its own
		// output).
		enc := log.EncodeFramed(trace.FramedOptions{})
		again, rep2 := trace.DecodePathLogSalvage(enc)
		if !rep2.Clean() {
			t.Fatalf("salvaged log does not re-encode cleanly: %v", rep2)
		}
		if !reflect.DeepEqual(log, again) {
			t.Fatal("salvaged log is not a fixed point of the framed codec")
		}
	})
}

func FuzzDecodeAccessVectorLog(f *testing.F) {
	av := &trace.AccessVectorLog{}
	av.Append(0, 0)
	av.Append(0, 1)
	av.Append(2, 1)
	f.Add(av.Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := trace.DecodeAccessVectorLog(data)
		if err != nil {
			return
		}
		if _, err := trace.DecodeAccessVectorLog(log.Encode()); err != nil {
			t.Fatalf("re-decode of a decoded access-vector log failed: %v", err)
		}
	})
}

func FuzzDecodeSyncOrderLog(f *testing.F) {
	so := &trace.SyncOrderLog{}
	so.Append(0)
	so.Append(1)
	so.Append(0)
	f.Add(so.Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := trace.DecodeSyncOrderLog(data)
		if err != nil {
			return
		}
		if _, err := trace.DecodeSyncOrderLog(log.Encode()); err != nil {
			t.Fatalf("re-decode of a decoded sync-order log failed: %v", err)
		}
	})
}
