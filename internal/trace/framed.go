// Framed path-log encoding: the crash-tolerant on-disk format.
//
// CLAP's whole premise is that the recorded process crashes, so the log
// writer cannot be trusted to flush a complete, well-formed buffer. The
// flat encoding (Encode/DecodePathLog) is all-or-nothing: one truncated
// varint loses the entire recording. The framed encoding chunks each
// thread's stream into small, independently decodable segments:
//
//	header:  magic "CLPF" + version byte
//	frame:   marker 0xA5 | kind | uvarint thread | uvarint payload len |
//	         payload | crc32(kind ‖ thread ‖ payload)
//
// Two frame kinds exist: a meta frame (spawn parentage, one per thread)
// and event frames (a sequence number plus up to EventsPerFrame events and
// the cut records of any partial segments among them). Length framing
// bounds the damage of a truncated tail to the final frame; the checksum
// turns silent bit flips into detected corruption; per-thread sequence
// numbers let the salvage decoder keep only each thread's contiguous
// prefix when a middle frame is lost.
//
// DecodeFramedPathLog is the strict decoder (any fault is an error);
// DecodePathLogSalvage recovers the longest valid prefix from damaged
// input, resynchronizing on frame markers past a corrupt region, and
// reports exactly what was kept and what was lost.
package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Framed-format constants.
const (
	framedVersion = 1
	frameMarker   = 0xA5

	frameMeta   = 0 // payload: parent+1, index
	frameEvents = 1 // payload: seq, nevents, events..., ncuts, cuts...

	// MaxThreads bounds the thread ids a framed decoder accepts; a corrupt
	// thread id past it is rejected instead of growing the thread table
	// without bound.
	MaxThreads = 1 << 20

	// maxFramePayload bounds a single frame's declared payload length.
	maxFramePayload = 1 << 26
)

// framedMagic identifies a framed CLAP path log.
var framedMagic = []byte{'C', 'L', 'P', 'F'}

// FramedOptions tunes the framed encoding.
type FramedOptions struct {
	// EventsPerFrame caps the events per frame (default 128). Smaller
	// frames lose less to a truncated tail at a higher size overhead.
	EventsPerFrame int
}

// IsFramed reports whether buf starts with the framed-format header.
func IsFramed(buf []byte) bool {
	return len(buf) >= len(framedMagic)+1 && string(buf[:len(framedMagic)]) == string(framedMagic)
}

// EncodeFramed serializes the log in the crash-tolerant framed format.
func (l *PathLog) EncodeFramed(opts FramedOptions) []byte {
	per := opts.EventsPerFrame
	if per <= 0 {
		per = 128
	}
	buf := append([]byte{}, framedMagic...)
	buf = append(buf, framedVersion)
	for _, t := range l.Threads {
		var meta []byte
		meta = binary.AppendUvarint(meta, uint64(t.Parent+1))
		meta = binary.AppendUvarint(meta, uint64(t.Index))
		buf = appendFrame(buf, frameMeta, t.Thread, meta)
		cutIdx := 0
		seq := uint64(1)
		for off := 0; off < len(t.Events); off += per {
			end := off + per
			if end > len(t.Events) {
				end = len(t.Events)
			}
			chunk := t.Events[off:end]
			var payload []byte
			payload = binary.AppendUvarint(payload, seq)
			payload = binary.AppendUvarint(payload, uint64(len(chunk)))
			payload = appendEvents(payload, chunk)
			// The cut records of this chunk's partial segments ride in the
			// same frame so a salvaged prefix stays self-consistent.
			partials := 0
			for _, e := range chunk {
				if e.Kind == EvPartial {
					partials++
				}
			}
			payload = binary.AppendUvarint(payload, uint64(partials))
			for k := 0; k < partials && cutIdx < len(t.Cuts); k++ {
				payload = binary.AppendUvarint(payload, t.Cuts[cutIdx])
				cutIdx++
			}
			buf = appendFrame(buf, frameEvents, t.Thread, payload)
			seq++
		}
	}
	return buf
}

// appendFrame writes one frame: marker, kind, thread, length, payload, crc.
func appendFrame(buf []byte, kind byte, thread ThreadID, payload []byte) []byte {
	buf = append(buf, frameMarker, kind)
	var tvar []byte
	tvar = binary.AppendUvarint(tvar, uint64(thread))
	buf = append(buf, tvar...)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(append(append([]byte{kind}, tvar...), payload...))
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// frame is one decoded frame.
type frame struct {
	kind   byte
	thread ThreadID
	// meta frames.
	parent ThreadID
	index  int32
	// event frames.
	seq    uint64
	events []Event
	cuts   []uint64
}

// parseFrame decodes the frame starting at off. On any fault it returns a
// CorruptError locating the damage; truncated reports whether the fault was
// the input ending mid-frame (as opposed to bad bytes).
func parseFrame(buf []byte, off int) (f frame, end int, truncated bool, cerr *CorruptError) {
	r := reader{buf: buf, off: off}
	mk, err := r.byte()
	if err != nil {
		return f, 0, true, r.corrupt(-1, "truncated at frame marker")
	}
	if mk != frameMarker {
		return f, 0, false, &CorruptError{Offset: off, Thread: -1, Reason: fmt.Sprintf("bad frame marker 0x%02x", mk)}
	}
	kind, err := r.byte()
	if err != nil {
		return f, 0, true, r.corrupt(-1, "truncated at frame kind")
	}
	if kind != frameMeta && kind != frameEvents {
		return f, 0, false, &CorruptError{Offset: off, Thread: -1, Reason: fmt.Sprintf("unknown frame kind %d", kind)}
	}
	tvStart := r.off
	tid, err := r.uvarint()
	if err != nil {
		return f, 0, r.off >= len(buf), r.corrupt(-1, "frame thread id: %v", err)
	}
	if tid >= MaxThreads {
		return f, 0, false, &CorruptError{Offset: off, Thread: -1, Reason: fmt.Sprintf("thread id %d exceeds the limit %d", tid, MaxThreads)}
	}
	tvEnd := r.off
	thread := ThreadID(tid)
	plen, err := r.uvarint()
	if err != nil {
		return f, 0, r.off >= len(buf), r.corrupt(thread, "frame payload length: %v", err)
	}
	if plen > maxFramePayload {
		return f, 0, false, r.corrupt(thread, "frame payload length %d exceeds the limit %d", plen, maxFramePayload)
	}
	if plen+4 > uint64(r.remaining()) {
		return f, 0, true, r.corrupt(thread, "frame payload %dB overruns %dB remaining", plen, r.remaining())
	}
	payload := buf[r.off : r.off+int(plen)]
	crcOff := r.off + int(plen)
	got := binary.LittleEndian.Uint32(buf[crcOff : crcOff+4])
	want := crc32.ChecksumIEEE(append(append([]byte{kind}, buf[tvStart:tvEnd]...), payload...))
	if got != want {
		return f, 0, false, &CorruptError{Offset: off, Thread: thread,
			Reason: fmt.Sprintf("frame checksum mismatch (got %08x, want %08x)", got, want)}
	}
	end = crcOff + 4

	f = frame{kind: kind, thread: thread}
	pr := reader{buf: payload}
	fail := func(format string, args ...any) (frame, int, bool, *CorruptError) {
		return frame{}, 0, false, &CorruptError{Offset: off + pr.off, Thread: thread, Reason: fmt.Sprintf(format, args...)}
	}
	switch kind {
	case frameMeta:
		parent, err := pr.uvarint()
		if err != nil {
			return fail("meta parent: %v", err)
		}
		if parent > MaxThreads {
			return fail("meta parent %d exceeds the limit %d", parent, MaxThreads)
		}
		index, err := pr.uvarint()
		if err != nil {
			return fail("meta index: %v", err)
		}
		if index > 1<<31-1 {
			return fail("meta index %d out of range", index)
		}
		f.parent = ThreadID(parent) - 1
		f.index = int32(index)
	case frameEvents:
		seq, err := pr.uvarint()
		if err != nil {
			return fail("frame sequence: %v", err)
		}
		f.seq = seq
		cnt, err := pr.uvarint()
		if err != nil {
			return fail("frame event count: %v", err)
		}
		if cnt > MaxDecodedEvents {
			return fail("frame event count %d exceeds the decoder cap %d", cnt, uint64(MaxDecodedEvents))
		}
		events, err := decodeEvents(&pr, cnt, thread)
		if err != nil {
			return fail("%v", err)
		}
		f.events = events
		ncuts, err := pr.uvarint()
		if err != nil {
			return fail("frame cut count: %v", err)
		}
		if cerr := pr.checkCount(ncuts, thread, "frame cut count"); cerr != nil {
			return fail("%s", cerr.Reason)
		}
		for i := uint64(0); i < ncuts; i++ {
			c, err := pr.uvarint()
			if err != nil {
				return fail("frame cut %d: %v", i, err)
			}
			f.cuts = append(f.cuts, c)
		}
	}
	if !pr.done() {
		return fail("%d trailing payload bytes", pr.remaining())
	}
	return f, end, false, nil
}

// SalvageReport describes what DecodePathLogSalvage recovered.
type SalvageReport struct {
	// BytesTotal, BytesSalvaged and BytesSkipped partition the input:
	// salvaged bytes decoded into kept frames, skipped bytes were corrupt,
	// unreachable, or belonged to out-of-sequence frames.
	BytesTotal    int
	BytesSalvaged int
	BytesSkipped  int
	// Frames counts frames kept; DroppedFrames counts frames that parsed
	// but were discarded (sequence gap after a lost frame).
	Frames        int
	DroppedFrames int
	// Threads and Events count the recovered data.
	Threads int
	Events  int
	// Truncated reports that the input ended mid-frame — the signature of a
	// crash-interrupted write.
	Truncated bool
	// Err is the first corruption encountered (nil for a clean log).
	Err *CorruptError
}

// Clean reports whether the whole input decoded without damage.
func (r *SalvageReport) Clean() bool { return r.Err == nil }

// String summarizes the salvage for logs and CLI output.
func (r *SalvageReport) String() string {
	if r.Clean() {
		return fmt.Sprintf("clean: %d frames, %d threads, %d events (%dB)",
			r.Frames, r.Threads, r.Events, r.BytesTotal)
	}
	state := "corrupt"
	if r.Truncated {
		state = "truncated"
	}
	return fmt.Sprintf("%s at byte %d (%s): salvaged %d/%dB, %d frames (+%d dropped), %d threads, %d events",
		state, r.Err.Offset, r.Err.Reason, r.BytesSalvaged, r.BytesTotal, r.Frames, r.DroppedFrames, r.Threads, r.Events)
}

// DecodeFramedPathLog strictly decodes a framed log: any truncation, bit
// flip, missing frame or trailing garbage is a *CorruptError.
func DecodeFramedPathLog(buf []byte) (*PathLog, error) {
	log, rep := DecodePathLogSalvage(buf)
	if rep.Err != nil {
		return nil, rep.Err
	}
	if rep.DroppedFrames > 0 || rep.BytesSkipped > 0 {
		return nil, &CorruptError{Offset: 0, Thread: -1,
			Reason: fmt.Sprintf("%d dropped frames, %d skipped bytes", rep.DroppedFrames, rep.BytesSkipped)}
	}
	return log, nil
}

// DecodePathLogSalvage leniently decodes a framed log, recovering the
// longest valid prefix of every thread's stream from truncated or
// bit-flipped input. It never fails: the returned log holds whatever was
// recoverable (possibly nothing) and the report says what happened. After a
// corrupt region it resynchronizes on the next checksum-valid frame, so a
// single damaged frame costs only that frame (and, via sequence numbers,
// its thread's subsequent frames — a salvaged thread stream is always a
// contiguous prefix of the recorded one).
func DecodePathLogSalvage(buf []byte) (*PathLog, *SalvageReport) {
	log := &PathLog{}
	rep := &SalvageReport{BytesTotal: len(buf)}
	headerLen := len(framedMagic) + 1
	if !IsFramed(buf) {
		rep.Err = &CorruptError{Offset: 0, Thread: -1, Reason: "missing framed-log magic"}
		rep.BytesSkipped = len(buf)
		rep.Truncated = len(buf) < headerLen
		return log, rep
	}
	if buf[len(framedMagic)] != framedVersion {
		rep.Err = &CorruptError{Offset: len(framedMagic), Thread: -1,
			Reason: fmt.Sprintf("unsupported framed-log version %d", buf[len(framedMagic)])}
		rep.BytesSkipped = len(buf)
		return log, rep
	}
	rep.BytesSalvaged = headerLen

	// nextSeq tracks each thread's expected event-frame sequence number; a
	// gap means an earlier frame was lost, so later frames of that thread
	// are dropped to keep the salvaged stream a true prefix.
	nextSeq := map[ThreadID]uint64{}
	seen := map[ThreadID]bool{}
	off := headerLen
	for off < len(buf) {
		f, end, truncated, cerr := parseFrame(buf, off)
		if cerr == nil {
			keep := true
			switch f.kind {
			case frameMeta:
				log.SetThreadMeta(f.thread, f.parent, f.index)
			case frameEvents:
				if f.seq != nextSeq[f.thread]+1 {
					keep = false // gap: an earlier frame of this thread was lost
				} else {
					nextSeq[f.thread] = f.seq
					for _, e := range f.events {
						log.Append(f.thread, e)
					}
					for _, c := range f.cuts {
						log.AppendCut(f.thread, c)
					}
					rep.Events += len(f.events)
				}
			}
			if keep {
				rep.Frames++
				rep.BytesSalvaged += end - off
				seen[f.thread] = true
			} else {
				rep.DroppedFrames++
				rep.BytesSkipped += end - off
				if rep.Err == nil {
					rep.Err = &CorruptError{Offset: off, Thread: f.thread,
						Reason: fmt.Sprintf("frame sequence gap (got %d, want %d)", f.seq, nextSeq[f.thread]+1)}
				}
			}
			off = end
			continue
		}
		if rep.Err == nil {
			rep.Err = cerr
		}
		if truncated {
			rep.Truncated = true
			rep.BytesSkipped += len(buf) - off
			break
		}
		// Resynchronize: scan for the next offset where a checksum-valid
		// frame parses. A false positive needs a 1-in-2³² CRC collision.
		resync := -1
		for cand := off + 1; cand < len(buf); cand++ {
			if buf[cand] != frameMarker {
				continue
			}
			if _, _, _, err := parseFrame(buf, cand); err == nil {
				resync = cand
				break
			}
		}
		if resync < 0 {
			rep.BytesSkipped += len(buf) - off
			break
		}
		rep.BytesSkipped += resync - off
		off = resync
	}
	rep.Threads = len(seen)
	return log, rep
}

// FrameSpan locates one frame inside a framed encoding, for tooling (the
// fault-injection harness uses it to truncate at segment boundaries or drop
// a specific thread's segments).
type FrameSpan struct {
	Off, Len int
	Thread   ThreadID
	// Kind is 0 for a meta frame, 1 for an events frame.
	Kind byte
}

// FrameSpans inventories the frames of a framed log. It requires a clean
// log (it is a tooling aid, not a salvage path).
func FrameSpans(buf []byte) ([]FrameSpan, error) {
	if !IsFramed(buf) {
		return nil, &CorruptError{Offset: 0, Thread: -1, Reason: "missing framed-log magic"}
	}
	var spans []FrameSpan
	off := len(framedMagic) + 1
	for off < len(buf) {
		f, end, _, cerr := parseFrame(buf, off)
		if cerr != nil {
			return nil, cerr
		}
		spans = append(spans, FrameSpan{Off: off, Len: end - off, Thread: f.thread, Kind: f.kind})
		off = end
	}
	return spans, nil
}
