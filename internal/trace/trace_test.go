package trace

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPathLogRoundTrip(t *testing.T) {
	log := &PathLog{}
	log.Append(0, Event{Kind: EvEnter, Arg: 0})
	log.Append(0, Event{Kind: EvPath, Arg: 5})
	log.Append(1, Event{Kind: EvEnter, Arg: 2})
	log.Append(1, Event{Kind: EvPath, Arg: 12345678901})
	log.Append(1, Event{Kind: EvExit})
	log.Append(0, Event{Kind: EvPartial, Arg: 7, Arg2: 3})
	log.SetThreadMeta(1, 0, 0)
	buf := log.Encode()
	got, err := DecodePathLog(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, log) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, log)
	}
	if log.Size() != len(buf) {
		t.Error("Size must equal encoded length")
	}
	if log.EventCount() != 6 {
		t.Errorf("EventCount = %d, want 6", log.EventCount())
	}
}

func TestPathLogAppendGrowsSparsely(t *testing.T) {
	log := &PathLog{}
	log.Append(3, Event{Kind: EvExit})
	if len(log.Threads) != 4 {
		t.Fatalf("threads = %d, want 4", len(log.Threads))
	}
	for i, tl := range log.Threads {
		if tl.Thread != ThreadID(i) {
			t.Fatalf("thread %d has id %d", i, tl.Thread)
		}
	}
}

func TestDecodePathLogErrors(t *testing.T) {
	if _, err := DecodePathLog([]byte{0x01}); err == nil {
		t.Error("truncated log must fail")
	}
	// Unknown event kind (layout: nthreads, parent, index, ncuts, count, kind).
	log := &PathLog{}
	log.Append(0, Event{Kind: EvExit})
	buf := log.Encode()
	buf[5] = 0xEE
	if _, err := DecodePathLog(buf); err == nil {
		t.Error("unknown kind must fail")
	}
	// Trailing garbage.
	buf2 := append((&PathLog{}).Encode(), 0x00)
	if _, err := DecodePathLog(buf2); err == nil {
		t.Error("trailing bytes must fail")
	}
}

func TestAccessVectorRoundTrip(t *testing.T) {
	log := &AccessVectorLog{}
	log.Append(0, 1)
	log.Append(0, 2)
	log.Append(2, 0)
	buf := log.Encode()
	got, err := DecodeAccessVectorLog(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, log) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, log)
	}
	if log.AccessCount() != 3 {
		t.Errorf("AccessCount = %d, want 3", log.AccessCount())
	}
	if log.Size() != len(buf) {
		t.Error("Size must equal encoded length")
	}
	if len(got.Vectors[1]) != 0 {
		t.Error("untouched vector must stay empty")
	}
}

func TestDecodeAccessVectorErrors(t *testing.T) {
	if _, err := DecodeAccessVectorLog([]byte{0x02, 0x01}); err == nil {
		t.Error("truncated vectors must fail")
	}
	buf := append((&AccessVectorLog{}).Encode(), 0x07)
	if _, err := DecodeAccessVectorLog(buf); err == nil {
		t.Error("trailing bytes must fail")
	}
}

// TestPropertyPathLogRoundTrip fuzzes random logs through the codec.
func TestPropertyPathLogRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		log := &PathLog{}
		threads := r.Intn(5)
		for ti := 0; ti < threads; ti++ {
			n := r.Intn(30)
			for i := 0; i < n; i++ {
				switch r.Intn(4) {
				case 0:
					log.Append(ThreadID(ti), Event{Kind: EvEnter, Arg: uint64(r.Intn(100))})
				case 1:
					log.Append(ThreadID(ti), Event{Kind: EvPath, Arg: r.Uint64() >> uint(r.Intn(64))})
				case 2:
					log.Append(ThreadID(ti), Event{Kind: EvPartial, Arg: r.Uint64() >> uint(r.Intn(64)), Arg2: uint64(r.Intn(100))})
				default:
					log.Append(ThreadID(ti), Event{Kind: EvExit})
				}
			}
		}
		got, err := DecodePathLog(log.Encode())
		return err == nil && reflect.DeepEqual(got, log)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAccessVectorRoundTrip fuzzes random access-vector logs.
func TestPropertyAccessVectorRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		log := &AccessVectorLog{}
		vars := r.Intn(6)
		for v := 0; v < vars; v++ {
			n := r.Intn(40)
			for i := 0; i < n; i++ {
				log.Append(v, ThreadID(r.Intn(8)))
			}
		}
		got, err := DecodeAccessVectorLog(log.Encode())
		return err == nil && reflect.DeepEqual(got, log)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvEnter: "enter", EvPath: "path", EvPartial: "partial", EvExit: "exit",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kinds must render")
	}
}
