// Package trace defines the on-disk log formats produced at record time.
//
// CLAP's runtime log is one event stream per thread holding only
// thread-local control flow: function entries and exits plus Ball–Larus
// path ids. The LEAP baseline's log is one access vector (a thread-id
// sequence) per shared variable. Both are serialized with unsigned varints
// so that log sizes are directly comparable, reproducing Table 2's space
// columns.
package trace

import (
	"encoding/binary"
	"fmt"
)

// ThreadID identifies a VM thread. The main thread is 0; children are
// numbered in spawn order, which is deterministic per schedule (the paper
// identifies threads by their parent-children spawn order).
type ThreadID int32

// EventKind tags a CLAP path-log event.
type EventKind uint8

// Path-log event kinds.
const (
	// EvEnter marks a function call; payload is the function id.
	EvEnter EventKind = iota + 1
	// EvPath is a completed Ball–Larus segment; payload is the path id.
	EvPath
	// EvPartial is the in-flight path sum of a segment cut short by the
	// failure; payload is the partial sum.
	EvPartial
	// EvExit marks a function return; no payload.
	EvExit

	// evPathRun is a wire-only kind: a run of identical EvPath events
	// (payload: path id, repeat count). Loop iterations emit the same
	// Ball–Larus path id over and over, so run-length encoding shrinks the
	// log dramatically — the same reason whole-program-path logging
	// compresses so well in practice. Decoded logs never contain it.
	evPathRun
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvEnter:
		return "enter"
	case EvPath:
		return "path"
	case EvPartial:
		return "partial"
	case EvExit:
		return "exit"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one path-log record.
type Event struct {
	Kind EventKind
	// Arg is the function id for EvEnter and the path id / partial sum for
	// EvPath / EvPartial.
	Arg uint64
	// Arg2 is only used by EvPartial: the number of basic blocks actually
	// executed in the cut-short segment. Partial Ball–Larus sums decode to
	// a path that may extend past the executed prefix along zero-valued
	// edges; the block count lets the decoder truncate exactly. It is
	// written only when the failure fires, so it adds no recording cost.
	Arg2 uint64
}

// ThreadLog is the complete CLAP record of one thread.
type ThreadLog struct {
	Thread ThreadID
	// Parent is the spawning thread and Index the child's ordinal among the
	// parent's spawns; together they form the paper's deterministic
	// parent-children thread identification. The main thread has Parent -1.
	Parent ThreadID
	Index  int32
	Events []Event
	// Cuts holds one entry per EvPartial event, in event order: the cut
	// position of the closed activation, encoded as 2*ip + half, where ip
	// is the number of fully executed instructions in the activation's
	// final block and half marks a wait operation whose mutex-release half
	// executed before the failure.
	Cuts []uint64
}

// PathLog is a whole-execution CLAP record: one log per thread, ordered by
// thread id.
type PathLog struct {
	Threads []ThreadLog
}

// Append adds an event to the given thread's log, growing the per-thread
// table as needed. New thread slots default to Parent -1 (unknown) until
// SetThreadMeta fills them in.
func (l *PathLog) Append(t ThreadID, e Event) {
	l.grow(t)
	tl := &l.Threads[t]
	tl.Events = append(tl.Events, e)
}

// SetThreadMeta records the spawn parentage of thread t.
func (l *PathLog) SetThreadMeta(t, parent ThreadID, index int32) {
	l.grow(t)
	l.Threads[t].Parent = parent
	l.Threads[t].Index = index
}

// AppendCut records the cut position for the most recently appended
// EvPartial event of thread t.
func (l *PathLog) AppendCut(t ThreadID, cut uint64) {
	l.grow(t)
	l.Threads[t].Cuts = append(l.Threads[t].Cuts, cut)
}

func (l *PathLog) grow(t ThreadID) {
	for ThreadID(len(l.Threads)) <= t {
		l.Threads = append(l.Threads, ThreadLog{Thread: ThreadID(len(l.Threads)), Parent: -1})
	}
}

// EventCount returns the total number of events across threads.
func (l *PathLog) EventCount() int {
	n := 0
	for _, t := range l.Threads {
		n += len(t.Events)
	}
	return n
}

// Encode serializes the log. Layout: varint thread count, then per thread a
// varint event count followed by the events (kind byte + varint payload for
// kinds that carry one).
func (l *PathLog) Encode() []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(l.Threads)))
	for _, t := range l.Threads {
		buf = binary.AppendUvarint(buf, uint64(t.Parent+1))
		buf = binary.AppendUvarint(buf, uint64(t.Index))
		buf = binary.AppendUvarint(buf, uint64(len(t.Cuts)))
		for _, c := range t.Cuts {
			buf = binary.AppendUvarint(buf, c)
		}
		buf = binary.AppendUvarint(buf, uint64(len(t.Events)))
		buf = appendEvents(buf, t.Events)
	}
	return buf
}

// appendEvents serializes an event slice (run-length encoding repeated path
// ids), without a leading count. Shared by the flat and framed encodings.
func appendEvents(buf []byte, events []Event) []byte {
	for i := 0; i < len(events); {
		e := events[i]
		if e.Kind == EvPath {
			// Run-length encode repeated path ids.
			j := i + 1
			for j < len(events) && events[j].Kind == EvPath && events[j].Arg == e.Arg {
				j++
			}
			if j-i >= 2 {
				buf = append(buf, byte(evPathRun))
				buf = binary.AppendUvarint(buf, e.Arg)
				buf = binary.AppendUvarint(buf, uint64(j-i))
				i = j
				continue
			}
		}
		buf = append(buf, byte(e.Kind))
		switch e.Kind {
		case EvEnter, EvPath:
			buf = binary.AppendUvarint(buf, e.Arg)
		case EvPartial:
			buf = binary.AppendUvarint(buf, e.Arg)
			buf = binary.AppendUvarint(buf, e.Arg2)
		}
		i++
	}
	return buf
}

// MaxDecodedEvents caps the per-thread event count a decoder will honor.
// Run-length encoding means a handful of bytes can legitimately expand to
// many events, so event counts cannot be bounded by input size alone; this
// cap (16M events, orders of magnitude above any recording the VM's action
// budget allows) is the backstop that keeps a corrupt header from demanding
// a multi-gigabyte allocation.
const MaxDecodedEvents = 1 << 24

// CorruptError is the typed error every decoder in this package returns on
// malformed input. It pinpoints the corruption for salvage tooling: the byte
// offset where decoding failed, the thread being decoded (-1 when the fault
// is not attributable to one), and a human-readable reason.
type CorruptError struct {
	Offset int
	Thread ThreadID
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	if e.Thread >= 0 {
		return fmt.Sprintf("trace: corrupt log at byte %d (thread %d): %s", e.Offset, e.Thread, e.Reason)
	}
	return fmt.Sprintf("trace: corrupt log at byte %d: %s", e.Offset, e.Reason)
}

// corrupt builds a CorruptError at the reader's current offset.
func (r *reader) corrupt(thread ThreadID, format string, args ...any) *CorruptError {
	return &CorruptError{Offset: r.off, Thread: thread, Reason: fmt.Sprintf(format, args...)}
}

// checkCount guards every count-prefixed section against allocation bombs: a
// corrupt varint header can claim an absurd element count, but each element
// occupies at least one encoded byte, so any count exceeding the remaining
// input is provably corrupt — rejected before anything is allocated.
func (r *reader) checkCount(n uint64, thread ThreadID, what string) *CorruptError {
	if n > uint64(r.remaining()) {
		return r.corrupt(thread, "%s %d exceeds %d remaining bytes", what, n, r.remaining())
	}
	return nil
}

// DecodePathLog parses a serialized path log.
func DecodePathLog(buf []byte) (*PathLog, error) {
	r := reader{buf: buf}
	n, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: thread count: %w", err)
	}
	if cerr := r.checkCount(n, -1, "thread count"); cerr != nil {
		return nil, cerr
	}
	log := &PathLog{}
	for ti := uint64(0); ti < n; ti++ {
		parent, err := r.uvarint()
		if err != nil {
			return nil, fmt.Errorf("trace: thread %d parent: %w", ti, err)
		}
		index, err := r.uvarint()
		if err != nil {
			return nil, fmt.Errorf("trace: thread %d index: %w", ti, err)
		}
		ncuts, err := r.uvarint()
		if err != nil {
			return nil, fmt.Errorf("trace: thread %d cut count: %w", ti, err)
		}
		if cerr := r.checkCount(ncuts, ThreadID(ti), "cut count"); cerr != nil {
			return nil, cerr
		}
		var cuts []uint64
		for i := uint64(0); i < ncuts; i++ {
			c, err := r.uvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: thread %d cut %d: %w", ti, i, err)
			}
			cuts = append(cuts, c)
		}
		cnt, err := r.uvarint()
		if err != nil {
			return nil, fmt.Errorf("trace: thread %d event count: %w", ti, err)
		}
		// Run-length-encoded events can legitimately outnumber the remaining
		// bytes, so the byte-count bound does not apply; the absolute cap
		// below keeps a corrupt header (or run count) from demanding a
		// multi-gigabyte slice.
		if cnt > MaxDecodedEvents {
			return nil, r.corrupt(ThreadID(ti), "event count %d exceeds the decoder cap %d", cnt, uint64(MaxDecodedEvents))
		}
		tl := ThreadLog{Thread: ThreadID(ti), Parent: ThreadID(parent) - 1, Index: int32(index), Cuts: cuts}
		events, err := decodeEvents(&r, cnt, ThreadID(ti))
		if err != nil {
			return nil, err
		}
		tl.Events = events
		log.Threads = append(log.Threads, tl)
	}
	if !r.done() {
		return nil, fmt.Errorf("trace: %d trailing bytes", r.remaining())
	}
	return log, nil
}

// decodeEvents parses exactly cnt events from r (expanding run-length
// records). Shared by the flat and framed decoders; callers must have
// bounded cnt by MaxDecodedEvents already.
func decodeEvents(r *reader, cnt uint64, thread ThreadID) ([]Event, error) {
	var events []Event
	for uint64(len(events)) < cnt {
		i := len(events)
		kb, err := r.byte()
		if err != nil {
			return nil, fmt.Errorf("trace: thread %d event %d: %w", thread, i, err)
		}
		e := Event{Kind: EventKind(kb)}
		switch e.Kind {
		case EvEnter, EvPath:
			arg, err := r.uvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: thread %d event %d payload: %w", thread, i, err)
			}
			e.Arg = arg
		case EvPartial:
			arg, err := r.uvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: thread %d event %d payload: %w", thread, i, err)
			}
			e.Arg = arg
			arg2, err := r.uvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: thread %d event %d payload2: %w", thread, i, err)
			}
			e.Arg2 = arg2
		case evPathRun:
			arg, err := r.uvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: thread %d event %d run id: %w", thread, i, err)
			}
			count, err := r.uvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: thread %d event %d run count: %w", thread, i, err)
			}
			if count < 2 || uint64(len(events))+count > cnt {
				return nil, fmt.Errorf("trace: thread %d event %d: bad run count %d", thread, i, count)
			}
			for k := uint64(0); k < count; k++ {
				events = append(events, Event{Kind: EvPath, Arg: arg})
			}
			continue
		case EvExit:
		default:
			return nil, fmt.Errorf("trace: thread %d event %d: unknown kind %d", thread, i, kb)
		}
		events = append(events, e)
	}
	return events, nil
}

// Size returns the encoded byte size, the number Table 2 reports for CLAP.
func (l *PathLog) Size() int { return len(l.Encode()) }

// AccessVectorLog is the LEAP baseline's record: for every shared variable,
// the global sequence of thread ids that accessed it. (LEAP's key insight
// is that per-variable access vectors suffice for deterministic replay; its
// cost is the synchronized logging of every shared access.)
type AccessVectorLog struct {
	// Vectors is indexed by shared-variable id.
	Vectors [][]ThreadID
}

// Append records an access by thread t to shared variable v.
func (l *AccessVectorLog) Append(v int, t ThreadID) {
	for len(l.Vectors) <= v {
		l.Vectors = append(l.Vectors, nil)
	}
	l.Vectors[v] = append(l.Vectors[v], t)
}

// AccessCount returns the total number of recorded accesses.
func (l *AccessVectorLog) AccessCount() int {
	n := 0
	for _, v := range l.Vectors {
		n += len(v)
	}
	return n
}

// Encode serializes the access vectors: varint variable count, then per
// variable a varint length and the thread ids as varints.
func (l *AccessVectorLog) Encode() []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(l.Vectors)))
	for _, vec := range l.Vectors {
		buf = binary.AppendUvarint(buf, uint64(len(vec)))
		for _, t := range vec {
			buf = binary.AppendUvarint(buf, uint64(t))
		}
	}
	return buf
}

// DecodeAccessVectorLog parses a serialized access-vector log.
func DecodeAccessVectorLog(buf []byte) (*AccessVectorLog, error) {
	r := reader{buf: buf}
	n, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: vector count: %w", err)
	}
	if cerr := r.checkCount(n, -1, "vector count"); cerr != nil {
		return nil, cerr
	}
	log := &AccessVectorLog{}
	for vi := uint64(0); vi < n; vi++ {
		cnt, err := r.uvarint()
		if err != nil {
			return nil, fmt.Errorf("trace: vector %d length: %w", vi, err)
		}
		if cerr := r.checkCount(cnt, -1, "vector length"); cerr != nil {
			return nil, cerr
		}
		var vec []ThreadID
		for i := uint64(0); i < cnt; i++ {
			tid, err := r.uvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: vector %d entry %d: %w", vi, i, err)
			}
			vec = append(vec, ThreadID(tid))
		}
		log.Vectors = append(log.Vectors, vec)
	}
	if !r.done() {
		return nil, fmt.Errorf("trace: %d trailing bytes", r.remaining())
	}
	return log, nil
}

// Size returns the encoded byte size, the number Table 2 reports for LEAP.
func (l *AccessVectorLog) Size() int { return len(l.Encode()) }

// SyncOrderLog is the optional §6.4 extension record: the global order of
// synchronization operations. Entry k names the thread whose next sync
// operation (in its program order) was the k-th to execute. The paper
// discusses recording this to shrink the constraint system, at the price
// of extra runtime synchronization; it is off by default for exactly the
// reasons the paper gives.
type SyncOrderLog struct {
	Seq []ThreadID
}

// Append records one sync operation by thread t.
func (l *SyncOrderLog) Append(t ThreadID) { l.Seq = append(l.Seq, t) }

// Encode serializes the order as varints.
func (l *SyncOrderLog) Encode() []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(l.Seq)))
	for _, t := range l.Seq {
		buf = binary.AppendUvarint(buf, uint64(t))
	}
	return buf
}

// DecodeSyncOrderLog parses a serialized sync order.
func DecodeSyncOrderLog(buf []byte) (*SyncOrderLog, error) {
	r := reader{buf: buf}
	n, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: sync order length: %w", err)
	}
	if cerr := r.checkCount(n, -1, "sync order length"); cerr != nil {
		return nil, cerr
	}
	log := &SyncOrderLog{}
	for i := uint64(0); i < n; i++ {
		t, err := r.uvarint()
		if err != nil {
			return nil, fmt.Errorf("trace: sync order entry %d: %w", i, err)
		}
		log.Seq = append(log.Seq, ThreadID(t))
	}
	if !r.done() {
		return nil, fmt.Errorf("trace: %d trailing bytes", r.remaining())
	}
	return log, nil
}

// Size returns the encoded byte size.
func (l *SyncOrderLog) Size() int { return len(l.Encode()) }

// reader is a minimal cursor over an encoded buffer.
type reader struct {
	buf []byte
	off int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("unexpected EOF at offset %d", r.off)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) done() bool     { return r.off == len(r.buf) }
func (r *reader) remaining() int { return len(r.buf) - r.off }
