package trace

import (
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// sampleLog builds a three-thread log exercising every event kind, the
// run-length path encoding, partial segments with cuts, and enough events
// to span multiple frames at small EventsPerFrame.
func sampleLog() *PathLog {
	l := &PathLog{}
	l.SetThreadMeta(0, -1, 0)
	l.SetThreadMeta(1, 0, 0)
	l.SetThreadMeta(2, 0, 1)
	l.Append(0, Event{Kind: EvEnter, Arg: 0})
	for i := 0; i < 300; i++ {
		l.Append(0, Event{Kind: EvPath, Arg: 7}) // long run → run-length encoded
	}
	l.Append(0, Event{Kind: EvPath, Arg: 3})
	l.Append(0, Event{Kind: EvExit})
	l.Append(1, Event{Kind: EvEnter, Arg: 1})
	l.Append(1, Event{Kind: EvPath, Arg: 2})
	l.Append(1, Event{Kind: EvPartial, Arg: 5, Arg2: 4})
	l.AppendCut(1, 9)
	l.Append(2, Event{Kind: EvEnter, Arg: 2})
	for i := 0; i < 50; i++ {
		l.Append(2, Event{Kind: EvPath, Arg: uint64(i % 3)})
	}
	l.Append(2, Event{Kind: EvPartial, Arg: 1, Arg2: 0})
	l.AppendCut(2, 2)
	return l
}

func TestFramedRoundTrip(t *testing.T) {
	orig := sampleLog()
	for _, per := range []int{0, 1, 7, 128, 10_000} {
		buf := orig.EncodeFramed(FramedOptions{EventsPerFrame: per})
		if !IsFramed(buf) {
			t.Fatalf("per=%d: encoding lacks the framed magic", per)
		}
		got, err := DecodeFramedPathLog(buf)
		if err != nil {
			t.Fatalf("per=%d: strict decode: %v", per, err)
		}
		if !reflect.DeepEqual(orig, got) {
			t.Fatalf("per=%d: round trip mismatch\norig %+v\ngot  %+v", per, orig, got)
		}
	}
}

func TestFramedSalvageCleanLog(t *testing.T) {
	orig := sampleLog()
	buf := orig.EncodeFramed(FramedOptions{EventsPerFrame: 16})
	got, rep := DecodePathLogSalvage(buf)
	if !rep.Clean() {
		t.Fatalf("clean log reported damage: %v", rep)
	}
	if rep.Events != orig.EventCount() || rep.Threads != 3 {
		t.Fatalf("salvage stats wrong: %+v", rep)
	}
	if rep.BytesSalvaged != len(buf) || rep.BytesSkipped != 0 {
		t.Fatalf("byte accounting wrong: %+v", rep)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("clean salvage must equal the original")
	}
	if !strings.Contains(rep.String(), "clean") {
		t.Fatalf("report string: %q", rep.String())
	}
}

// eventsPrefix reports whether every thread of got holds a prefix of the
// corresponding thread's events in orig — the salvage guarantee.
func eventsPrefix(t *testing.T, orig, got *PathLog) {
	t.Helper()
	for _, tl := range got.Threads {
		if int(tl.Thread) >= len(orig.Threads) {
			t.Fatalf("salvage invented thread %d", tl.Thread)
		}
		ref := orig.Threads[tl.Thread]
		if len(tl.Events) > len(ref.Events) {
			t.Fatalf("thread %d: salvaged %d events, original has %d", tl.Thread, len(tl.Events), len(ref.Events))
		}
		if !reflect.DeepEqual(tl.Events, append([]Event(nil), ref.Events[:len(tl.Events)]...)) && len(tl.Events) > 0 {
			t.Fatalf("thread %d: salvaged events are not a prefix", tl.Thread)
		}
	}
}

func TestFramedSalvageTruncation(t *testing.T) {
	orig := sampleLog()
	buf := orig.EncodeFramed(FramedOptions{EventsPerFrame: 8})
	spans, err := FrameSpans(buf)
	if err != nil {
		t.Fatal(err)
	}
	boundaries := map[int]bool{len(buf): true, len(framedMagic) + 1: true}
	for _, s := range spans {
		boundaries[s.Off+s.Len] = true
	}
	for n := 0; n <= len(buf); n++ {
		got, rep := DecodePathLogSalvage(buf[:n])
		eventsPrefix(t, orig, got)
		if rep.Clean() && !boundaries[n] {
			t.Fatalf("truncation to %dB inside a frame reported clean", n)
		}
		if n < len(buf) && n > len(framedMagic) && !boundaries[n] && !rep.Truncated {
			t.Fatalf("truncation to %dB not flagged Truncated: %v", n, rep)
		}
		if rep.BytesSalvaged+rep.BytesSkipped != rep.BytesTotal {
			t.Fatalf("truncation to %dB: byte accounting does not partition: %+v", n, rep)
		}
	}
}

func TestFramedSalvageBitFlips(t *testing.T) {
	orig := sampleLog()
	buf := orig.EncodeFramed(FramedOptions{EventsPerFrame: 8})
	for off := 0; off < len(buf); off++ {
		for bit := 0; bit < 8; bit += 3 {
			mut := append([]byte(nil), buf...)
			mut[off] ^= 1 << bit
			got, rep := DecodePathLogSalvage(mut)
			_ = rep
			// Whatever was salvaged must still be a prefix of some thread's
			// stream unless the flip forged a different valid payload — the
			// CRC makes that a 1-in-2³² event, so assert the strong property.
			eventsPrefix(t, orig, got)
		}
	}
}

func TestFramedSalvageResync(t *testing.T) {
	orig := sampleLog()
	buf := orig.EncodeFramed(FramedOptions{EventsPerFrame: 8})
	spans, err := FrameSpans(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload of thread 2's first events frame; thread 2 spans
	// several frames, so the sequence-gap rule must drop all the later ones.
	var victim FrameSpan
	for _, s := range spans {
		if s.Thread == 2 && s.Kind == 1 {
			victim = s
			break
		}
	}
	if victim.Len == 0 {
		t.Fatal("no events frame for thread 2")
	}
	mut := append([]byte(nil), buf...)
	mut[victim.Off+victim.Len/2] ^= 0x40
	got, rep := DecodePathLogSalvage(mut)
	if rep.Clean() {
		t.Fatal("corruption not reported")
	}
	if rep.Err.Offset != victim.Off {
		t.Fatalf("corruption located at %d, frame starts at %d", rep.Err.Offset, victim.Off)
	}
	// The other threads must survive in full: resync found their frames.
	for _, tid := range []ThreadID{0, 1} {
		if !reflect.DeepEqual(got.Threads[tid].Events, orig.Threads[tid].Events) {
			t.Fatalf("thread %d lost events to an unrelated corrupt frame", tid)
		}
	}
	// Thread 2 keeps only the prefix before the damaged frame (here: none),
	// and its later frames are dropped by the sequence-gap rule.
	if len(got.Threads) > 2 && len(got.Threads[2].Events) != 0 {
		t.Fatalf("thread 2 kept %d events past a lost first frame", len(got.Threads[2].Events))
	}
	if rep.DroppedFrames == 0 {
		t.Fatal("sequence-gap frames not counted as dropped")
	}
}

func TestFramedSalvageDroppedFrame(t *testing.T) {
	orig := sampleLog()
	buf := orig.EncodeFramed(FramedOptions{EventsPerFrame: 8})
	spans, err := FrameSpans(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Remove thread 0's second events frame cleanly.
	count := 0
	var victim FrameSpan
	for _, s := range spans {
		if s.Thread == 0 && s.Kind == 1 {
			count++
			if count == 2 {
				victim = s
				break
			}
		}
	}
	if victim.Len == 0 {
		t.Fatal("thread 0 has fewer than two events frames")
	}
	mut := append(append([]byte(nil), buf[:victim.Off]...), buf[victim.Off+victim.Len:]...)
	got, rep := DecodePathLogSalvage(mut)
	eventsPrefix(t, orig, got)
	if len(got.Threads[0].Events) != 8 {
		t.Fatalf("thread 0 should keep exactly its first frame (8 events), kept %d", len(got.Threads[0].Events))
	}
	if rep.Clean() {
		t.Fatal("a sequence gap must be reported")
	}
	if !strings.Contains(rep.Err.Reason, "sequence gap") {
		t.Fatalf("gap reason: %v", rep.Err)
	}
}

func TestFramedHugePayloadRejected(t *testing.T) {
	buf := append([]byte{}, framedMagic...)
	buf = append(buf, framedVersion)
	buf = append(buf, frameMarker, frameEvents)
	buf = binary.AppendUvarint(buf, 0)             // thread
	buf = binary.AppendUvarint(buf, uint64(1)<<40) // absurd payload length
	if _, err := DecodeFramedPathLog(buf); err == nil {
		t.Fatal("absurd payload length accepted")
	}
	_, rep := DecodePathLogSalvage(buf)
	if rep.Clean() {
		t.Fatal("salvage must flag the absurd payload length")
	}
}

func TestFramedStrictRejectsDamage(t *testing.T) {
	buf := sampleLog().EncodeFramed(FramedOptions{})
	if _, err := DecodeFramedPathLog(buf[:len(buf)-3]); err == nil {
		t.Fatal("strict decode accepted a truncated log")
	}
	mut := append([]byte(nil), buf...)
	mut[len(mut)/2] ^= 1
	if _, err := DecodeFramedPathLog(mut); err == nil {
		t.Fatal("strict decode accepted a bit flip")
	}
	var cerr *CorruptError
	_, err := DecodeFramedPathLog(mut)
	if !errors.As(err, &cerr) {
		t.Fatalf("strict decode error is not a *CorruptError: %v", err)
	}
}

func TestFrameSpansPartition(t *testing.T) {
	buf := sampleLog().EncodeFramed(FramedOptions{EventsPerFrame: 8})
	spans, err := FrameSpans(buf)
	if err != nil {
		t.Fatal(err)
	}
	off := len(framedMagic) + 1
	for _, s := range spans {
		if s.Off != off {
			t.Fatalf("span at %d, expected %d", s.Off, off)
		}
		off += s.Len
	}
	if off != len(buf) {
		t.Fatalf("spans cover %dB of %dB", off, len(buf))
	}
}

// The flat decoders must reject declared counts that exceed the input size
// instead of allocating for them.
func TestFlatDecoderBoundChecks(t *testing.T) {
	huge := binary.AppendUvarint(nil, uint64(1)<<40)
	var cerr *CorruptError
	if _, err := DecodePathLog(huge); !errors.As(err, &cerr) {
		t.Fatalf("DecodePathLog: want *CorruptError for a huge thread count, got %v", err)
	}
	if _, err := DecodeAccessVectorLog(huge); !errors.As(err, &cerr) {
		t.Fatalf("DecodeAccessVectorLog: want *CorruptError for a huge vector count, got %v", err)
	}
	if _, err := DecodeSyncOrderLog(huge); !errors.As(err, &cerr) {
		t.Fatalf("DecodeSyncOrderLog: want *CorruptError for a huge length, got %v", err)
	}
	// An in-bounds vector count with a huge inner length must also fail.
	buf := binary.AppendUvarint(nil, 1)
	buf = binary.AppendUvarint(buf, uint64(1)<<40)
	if _, err := DecodeAccessVectorLog(buf); !errors.As(err, &cerr) {
		t.Fatalf("DecodeAccessVectorLog: want *CorruptError for a huge vector length, got %v", err)
	}
	// A huge event count in the flat path log must hit the decoder cap.
	buf = binary.AppendUvarint(nil, 1)             // one thread
	buf = binary.AppendUvarint(buf, 0)             // parent+1
	buf = binary.AppendUvarint(buf, 0)             // index
	buf = binary.AppendUvarint(buf, uint64(1)<<40) // event count
	if _, err := DecodePathLog(buf); !errors.As(err, &cerr) {
		t.Fatalf("DecodePathLog: want *CorruptError for a huge event count, got %v", err)
	}
}
