// Package symexec re-executes each thread symbolically along its recorded
// Ball–Larus path, producing the ingredients of CLAP's constraint system:
// the per-thread SAP sequences, the path conditions (Fpath), and the bug
// predicate (Fbug).
//
// It plays the role of the paper's modified KLEE: it follows exactly the
// recorded path (no exploration), returns a fresh symbolic value for every
// shared load, tracks non-shared state concretely-or-symbolically, and
// delays symbolic-address resolution using ordered write lists (§5).
package symexec

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/symbolic"
	"repro/internal/trace"
)

// SAPKind classifies shared access points. Reads and writes are the memory
// SAPs; the rest are the synchronization operations of Fso plus the
// per-thread Start/Exit pseudo-operations that fork and join map to.
type SAPKind uint8

// SAP kinds.
const (
	SAPStart SAPKind = iota
	SAPExit
	SAPRead
	SAPWrite
	SAPLock
	SAPUnlock
	SAPWaitBegin // releases the mutex, begins waiting
	SAPWaitEnd   // signaled and mutex reacquired
	SAPSignal
	SAPBroadcast
	SAPFork
	SAPJoin
	SAPYield
	SAPFence
)

var sapNames = map[SAPKind]string{
	SAPStart: "start", SAPExit: "exit", SAPRead: "read", SAPWrite: "write",
	SAPLock: "lock", SAPUnlock: "unlock", SAPWaitBegin: "wait-begin",
	SAPWaitEnd: "wait-end", SAPSignal: "signal", SAPBroadcast: "broadcast",
	SAPFork: "fork", SAPJoin: "join", SAPYield: "yield", SAPFence: "fence",
}

// String names the kind.
func (k SAPKind) String() string {
	if s, ok := sapNames[k]; ok {
		return s
	}
	return fmt.Sprintf("sap(%d)", uint8(k))
}

// IsMemory reports whether the SAP is a shared read or write.
func (k SAPKind) IsMemory() bool { return k == SAPRead || k == SAPWrite }

// IsSync reports whether the SAP is a synchronization operation.
func (k SAPKind) IsSync() bool { return !k.IsMemory() }

// MustInterleave reports whether the SAP is one of the paper's
// must-interleave operations (§4.2): operations that cause non-preemptive
// context switches and therefore delimit the segments used to count
// preemptions — wait, join, yield, exit (we include the start/fork sides
// of the same rendezvous too, as they equally force a switch).
func (k SAPKind) MustInterleave() bool {
	switch k {
	case SAPWaitBegin, SAPWaitEnd, SAPJoin, SAPYield, SAPExit, SAPStart:
		return true
	}
	return false
}

// NoAddr marks a memory SAP whose address is symbolic.
const NoAddr = -1

// SAP is one shared access point of the analyzed execution.
type SAP struct {
	// Thread and Seq identify the SAP: the Seq-th SAP of the thread in
	// program (issue) order.
	Thread trace.ThreadID
	Seq    int
	Kind   SAPKind

	// Var is the accessed global for memory SAPs.
	Var ir.GlobalID
	// Addr is the flat memory address, or NoAddr when the access index is
	// symbolic; then AddrIndex holds the element-index expression.
	Addr      int
	AddrIndex symbolic.Expr

	// Sym is the fresh symbol a read returns.
	Sym *symbolic.Sym
	// Val is the value expression a write stores.
	Val symbolic.Expr

	// Mutex is the lock for lock/unlock/wait SAPs; Cond the condition
	// variable for wait/signal/broadcast.
	Mutex ir.SyncID
	Cond  ir.SyncID

	// Other is the counterpart thread of fork and join.
	Other trace.ThreadID

	// MustLocks is the statically computed must-held lockset at the
	// access (memory SAPs only; zero when no lockset analysis ran).
	// Diagnostics and the constraint preprocessor use it as a
	// conservative mutual-exclusion hint.
	MustLocks ir.LockSet

	// Pos is the source position of the instruction that produced the SAP
	// (zero for the Start/Exit pseudo-operations, which have none). The
	// timeline and explain reports use it to point at source lines.
	Pos minic.Pos
}

// String renders the SAP for diagnostics.
func (s *SAP) String() string {
	id := fmt.Sprintf("t%d#%d:%s", s.Thread, s.Seq, s.Kind)
	switch s.Kind {
	case SAPRead:
		return fmt.Sprintf("%s g%d@%d -> %s", id, s.Var, s.Addr, s.Sym)
	case SAPWrite:
		return fmt.Sprintf("%s g%d@%d = %s", id, s.Var, s.Addr, s.Val)
	case SAPFork, SAPJoin:
		return fmt.Sprintf("%s t%d", id, s.Other)
	case SAPLock, SAPUnlock:
		return fmt.Sprintf("%s m%d", id, s.Mutex)
	case SAPWaitBegin, SAPWaitEnd:
		return fmt.Sprintf("%s c%d/m%d", id, s.Cond, s.Mutex)
	case SAPSignal, SAPBroadcast:
		return fmt.Sprintf("%s c%d", id, s.Cond)
	}
	return id
}

// ThreadTrace is the symbolic summary of one thread.
type ThreadTrace struct {
	Thread trace.ThreadID
	// Parent/Index are the spawn identity (main has Parent -1).
	Parent trace.ThreadID
	Index  int32
	// SAPs in program order.
	SAPs []*SAP
	// PathCond are the Fpath conjuncts contributed by this thread: branch
	// conditions over symbolic reads, array bounds for symbolic indices,
	// and passed assertions.
	PathCond []symbolic.Expr
	// Exited reports whether the thread ran to completion in the recorded
	// execution (its trace then ends with an Exit SAP).
	Exited bool
}

// Analysis is the complete output of the symbolic execution phase.
type Analysis struct {
	Prog *ir.Program
	// Threads is indexed by thread id.
	Threads []*ThreadTrace
	// Bug is the Fbug predicate: it must hold for the failure to manifest
	// (the negation of the failing assertion's condition).
	Bug symbolic.Expr
	// BugThread is the thread whose assertion failed.
	BugThread trace.ThreadID
	// NumSyms is the number of symbolic read variables created.
	NumSyms int
	// ReadOf maps each symbol to its read SAP.
	ReadOf map[symbolic.SymID]*SAP
	// Shared is the sharing verdict used (indexed by ir.GlobalID).
	Shared []bool
}

// AllSAPs returns every SAP across threads (thread-major order).
func (a *Analysis) AllSAPs() []*SAP {
	var out []*SAP
	for _, t := range a.Threads {
		out = append(out, t.SAPs...)
	}
	return out
}

// SAPCount returns the paper's #SAPs.
func (a *Analysis) SAPCount() int {
	n := 0
	for _, t := range a.Threads {
		n += len(t.SAPs)
	}
	return n
}

// PathCondCount returns the number of Fpath conjuncts.
func (a *Analysis) PathCondCount() int {
	n := 0
	for _, t := range a.Threads {
		n += len(t.PathCond)
	}
	return n
}

// NoThread marks a FailureSpec with no failing thread: the recorded run
// ended without an assertion failure (only valid with Options.NoBug).
const NoThread trace.ThreadID = -1

// FailureSpec tells the analysis which assertion failed.
type FailureSpec struct {
	Thread trace.ThreadID
	Site   int
}
