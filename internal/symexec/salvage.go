package symexec

import (
	"fmt"

	"repro/internal/ballarus"
	"repro/internal/ir"
	"repro/internal/trace"
)

// BlockPrefix decodes a thread's (possibly truncated) path log into the
// flat executed basic-block sequence, in event order.
//
// It is the lenient sibling of the activation-tree builder: a salvaged log
// legitimately ends mid-activation (the crash cut the writer off before the
// closing exit events), so unclosed activations at the end of the stream are
// accepted. Everything else — unknown function ids, path ids outside the
// Ball–Larus numbering, unbalanced exits — is still an error: truncation
// loses suffixes, it never invents malformed prefixes.
//
// Because events are processed in order and each event contributes its
// blocks immediately, the result of a truncated log is always a prefix of
// the full log's result; the robustness suite relies on exactly this.
func BlockPrefix(paths []*ballarus.FuncPaths, tl *trace.ThreadLog) ([]ir.BlockID, error) {
	var blocks []ir.BlockID
	var stack []ir.FuncID
	for i, e := range tl.Events {
		switch e.Kind {
		case trace.EvEnter:
			if int(e.Arg) >= len(paths) {
				return nil, fmt.Errorf("symexec: thread %d event %d: bad function id %d", tl.Thread, i, e.Arg)
			}
			stack = append(stack, ir.FuncID(e.Arg))
		case trace.EvPath, trace.EvPartial:
			if len(stack) == 0 {
				return nil, fmt.Errorf("symexec: thread %d event %d: path outside activation", tl.Thread, i)
			}
			fp := paths[stack[len(stack)-1]]
			var seg ballarus.Segment
			var err error
			if e.Kind == trace.EvPath {
				seg, err = fp.Decode(e.Arg)
			} else {
				seg, err = fp.DecodePartial(e.Arg)
			}
			if err != nil {
				return nil, fmt.Errorf("symexec: thread %d event %d: %w", tl.Thread, i, err)
			}
			segBlocks := seg.Blocks
			if e.Kind == trace.EvPartial {
				if int(e.Arg2) < len(segBlocks) {
					segBlocks = segBlocks[:e.Arg2]
				}
				stack = stack[:len(stack)-1]
			}
			blocks = append(blocks, segBlocks...)
		case trace.EvExit:
			if len(stack) == 0 {
				return nil, fmt.Errorf("symexec: thread %d event %d: unbalanced exit", tl.Thread, i)
			}
			stack = stack[:len(stack)-1]
		default:
			return nil, fmt.Errorf("symexec: thread %d event %d: unexpected kind %v", tl.Thread, i, e.Kind)
		}
	}
	return blocks, nil
}
