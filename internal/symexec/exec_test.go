package symexec

import (
	"fmt"
	"testing"

	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/symbolic"
	"repro/internal/trace"
	"repro/internal/vm"
)

// recorded bundles a recorded failing (or passing) run.
type recorded struct {
	prog   *ir.Program
	rec    *vm.PathRecorder
	res    *vm.Result
	events map[trace.ThreadID][]vm.VisibleEvent
	shared []bool
}

// record runs src under the given scheduler with CLAP recording and an
// event shadow.
func record(t *testing.T, src string, sched vm.Scheduler, model vm.MemModel) *recorded {
	t.Helper()
	prog, err := ir.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	esc := escape.Analyze(prog)
	rec, err := vm.NewPathRecorder(prog)
	if err != nil {
		t.Fatal(err)
	}
	events := map[trace.ThreadID][]vm.VisibleEvent{}
	machine, err := vm.New(prog, vm.Config{
		Model:        model,
		Sched:        sched,
		Shared:       esc.Shared,
		PathRecorder: rec,
		OnVisible: func(ev vm.VisibleEvent) {
			if ev.Kind != vm.EvDrain {
				events[ev.Thread] = append(events[ev.Thread], ev)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Run()
	if err != nil {
		t.Fatal(err)
	}
	return &recorded{prog: prog, rec: rec, res: res, events: events, shared: esc.Shared}
}

// analyze runs symexec over the recorded run (which must have failed).
func analyzeRec(t *testing.T, r *recorded) *Analysis {
	t.Helper()
	if r.res.Failure == nil || r.res.Failure.Kind != vm.FailAssert {
		t.Fatalf("run did not fail with an assertion: %v", r.res.Failure)
	}
	an, err := Analyze(r.prog, r.rec.Paths, r.rec.Log, Options{
		Shared: r.shared,
		Failure: FailureSpec{
			Thread: r.res.Failure.Thread,
			Site:   r.res.Failure.Site,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

var kindOfEvent = map[vm.EventKind]SAPKind{
	vm.EvStart: SAPStart, vm.EvExit: SAPExit, vm.EvRead: SAPRead,
	vm.EvWrite: SAPWrite, vm.EvLock: SAPLock, vm.EvUnlock: SAPUnlock,
	vm.EvWaitBegin: SAPWaitBegin, vm.EvWaitEnd: SAPWaitEnd,
	vm.EvSignal: SAPSignal, vm.EvBroadcast: SAPBroadcast,
	vm.EvJoin: SAPJoin, vm.EvYield: SAPYield, vm.EvFence: SAPFence,
	vm.EvSpawn: SAPFork,
}

// checkAgainstEvents is the core soundness check: the per-thread SAP
// sequence reconstructed from the path log alone must match the events the
// VM actually performed, and binding each read symbol to the recorded value
// must satisfy every path condition and the bug predicate.
func checkAgainstEvents(t *testing.T, r *recorded, an *Analysis) {
	t.Helper()
	env := symbolic.MapEnv{}
	for tid, evs := range r.events {
		saps := an.Threads[tid].SAPs
		if len(saps) != len(evs) {
			var a, b []string
			for _, e := range evs {
				a = append(a, e.String())
			}
			for _, s := range saps {
				b = append(b, s.String())
			}
			t.Fatalf("thread %d: %d VM events vs %d SAPs\nVM:  %v\nSym: %v", tid, len(evs), len(saps), a, b)
		}
		for i, ev := range evs {
			s := saps[i]
			want := kindOfEvent[ev.Kind]
			if s.Kind != want {
				t.Fatalf("thread %d sap %d: kind %s, VM event %s", tid, i, s.Kind, ev.Kind)
			}
			if s.Kind == SAPRead || s.Kind == SAPWrite {
				if s.Addr != NoAddr && s.Addr != ev.Addr {
					t.Fatalf("thread %d sap %d: addr %d, VM %d", tid, i, s.Addr, ev.Addr)
				}
				if s.Kind == SAPRead {
					env[s.Sym.ID] = ev.Value
				}
			}
			if s.Kind == SAPFork && s.Other != ev.Other {
				t.Fatalf("thread %d sap %d: fork of t%d, VM t%d", tid, i, s.Other, ev.Other)
			}
		}
	}
	// With the recorded read values bound, symbolic addresses must match,
	// write values must match, path conditions must hold and the bug must
	// manifest.
	for tid, evs := range r.events {
		saps := an.Threads[tid].SAPs
		for i, ev := range evs {
			s := saps[i]
			if s.Kind == SAPWrite {
				got, err := symbolic.EvalInt(s.Val, env)
				if err != nil {
					t.Fatalf("thread %d sap %d: write value: %v", tid, i, err)
				}
				if got != ev.Value {
					t.Fatalf("thread %d sap %d: write value %d, VM wrote %d", tid, i, got, ev.Value)
				}
			}
			if (s.Kind == SAPRead || s.Kind == SAPWrite) && s.Addr == NoAddr {
				idx, err := symbolic.EvalInt(s.AddrIndex, env)
				if err != nil {
					t.Fatalf("thread %d sap %d: addr index: %v", tid, i, err)
				}
				layout := ir.NewLayout(r.prog)
				addr, ok := layout.Addr(r.prog, s.Var, idx)
				if !ok || addr != ev.Addr {
					t.Fatalf("thread %d sap %d: symbolic addr resolves to %d, VM %d", tid, i, addr, ev.Addr)
				}
			}
		}
	}
	for _, tt := range an.Threads {
		for _, c := range tt.PathCond {
			ok, err := symbolic.EvalBool(c, env)
			if err != nil {
				t.Fatalf("thread %d path condition %s: %v", tt.Thread, c, err)
			}
			if !ok {
				t.Fatalf("thread %d path condition %s is false under recorded values", tt.Thread, c)
			}
		}
	}
	ok, err := symbolic.EvalBool(an.Bug, env)
	if err != nil {
		t.Fatalf("bug predicate: %v", err)
	}
	if !ok {
		t.Fatalf("bug predicate %s is false under recorded values", an.Bug)
	}
}

// findFailingSeed records src under random seeds until an assertion fails.
func findFailingSeed(t *testing.T, src string, model vm.MemModel, maxSeed int64) *recorded {
	t.Helper()
	for seed := int64(0); seed < maxSeed; seed++ {
		r := record(t, src, vm.NewRandomScheduler(seed), model)
		if r.res.Failure != nil && r.res.Failure.Kind == vm.FailAssert {
			return r
		}
	}
	t.Fatalf("no failing seed found in %d tries", maxSeed)
	return nil
}

const figure2SC = `
int x;
int y;
func t1() {
	int r1 = x;
	x = r1 + 1;
	int r2 = y;
	if (r2 > 0) {
		int r3 = x;
		assert(r3 > 0, "assert1");
	}
}
func main() {
	int h;
	h = spawn t1();
	x = 2;
	x = x - 3;
	y = 1;
	join(h);
}
`

func TestFigure2Analysis(t *testing.T) {
	// Drive until the SC assertion fails (x read as <= 0 at the assert).
	r := findFailingSeed(t, figure2SC, vm.SC, 3000)
	an := analyzeRec(t, r)
	checkAgainstEvents(t, r, an)
	if an.BugThread != r.res.Failure.Thread {
		t.Errorf("bug thread = %d, want %d", an.BugThread, r.res.Failure.Thread)
	}
	// The bug predicate must be the negated assert condition over a read
	// symbol: !(R > 0).
	if an.Bug == nil || !an.Bug.IsBool() {
		t.Fatalf("bug predicate = %v", an.Bug)
	}
	if got := an.SAPCount(); got < 8 {
		t.Errorf("SAP count = %d, want >= 8", got)
	}
	if an.NumSyms == 0 {
		t.Error("no symbolic reads created")
	}
}

func TestAnalysisMatchesManySeedsAndPrograms(t *testing.T) {
	srcs := map[string]string{
		"figure2": figure2SC,
		"locked counter": `
int c;
int done;
mutex m;
func worker(n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		lock(m);
		int t = c;
		c = t + 1;
		unlock(m);
	}
	done = done + 1;
}
func main() {
	int h1;
	int h2;
	h1 = spawn worker(3);
	h2 = spawn worker(3);
	join(h1);
	join(h2);
	assert(c == 5, "expect lost update impossible: fails when c==6... inverted");
}
`,
		"racy flag": `
int flag;
int data;
func producer() {
	data = 42;
	flag = 1;
}
func consumer() {
	int f = flag;
	if (f == 1) {
		int d = data;
		assert(d == 0, "sees data");
	}
}
func main() {
	int h1;
	int h2;
	h1 = spawn producer();
	h2 = spawn consumer();
	join(h1);
	join(h2);
}
`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			found := 0
			for seed := int64(0); seed < 400 && found < 3; seed++ {
				r := record(t, src, vm.NewRandomScheduler(seed), vm.SC)
				if r.res.Failure == nil || r.res.Failure.Kind != vm.FailAssert {
					continue
				}
				found++
				an := analyzeRec(t, r)
				checkAgainstEvents(t, r, an)
			}
			if found == 0 {
				t.Skipf("no failing seed for %s", name)
			}
		})
	}
}

func TestAnalysisWithCondVars(t *testing.T) {
	src := `
int stage;
mutex m;
cond c;
func waiter() {
	lock(m);
	while (stage == 0) {
		wait(c, m);
	}
	unlock(m);
	assert(stage == 2, "stage jumped");
}
func main() {
	int h;
	h = spawn waiter();
	yield();
	lock(m);
	stage = 1;
	signal(c);
	unlock(m);
	join(h);
}
`
	found := false
	for seed := int64(0); seed < 500 && !found; seed++ {
		r := record(t, src, vm.NewRandomScheduler(seed), vm.SC)
		if r.res.Failure == nil || r.res.Failure.Kind != vm.FailAssert {
			continue
		}
		found = true
		an := analyzeRec(t, r)
		checkAgainstEvents(t, r, an)
		// The waiter must have WaitBegin/WaitEnd SAP pairs.
		var begins, ends int
		for _, s := range an.Threads[1].SAPs {
			switch s.Kind {
			case SAPWaitBegin:
				begins++
			case SAPWaitEnd:
				ends++
			}
		}
		if begins == 0 {
			t.Error("no WaitBegin SAP for the waiter")
		}
		if begins < ends {
			t.Errorf("begins=%d < ends=%d", begins, ends)
		}
	}
	if !found {
		t.Skip("no failing interleaving found")
	}
}

func TestAnalysisUnderPSO(t *testing.T) {
	src := `
int x;
int y;
func t2() {
	int r1 = y;
	if (r1 == 1) {
		int r2 = x;
		assert(r2 == 1, "write reorder observed");
	}
}
func main() {
	int h;
	h = spawn t2();
	x = 1;
	y = 1;
	join(h);
}
`
	r := findFailingSeed(t, src, vm.PSO, 2000)
	an := analyzeRec(t, r)
	checkAgainstEvents(t, r, an)
	// Bug: !(R_x == 1) with the recorded R_x = 0.
	if got := fmt.Sprint(an.Bug); got == "" {
		t.Error("bug must render")
	}
}

func TestAnalysisSymbolicArrayIndex(t *testing.T) {
	// The consumer indexes a shared array with a value read from shared
	// memory: the SAP address is symbolic and bounds conditions appear.
	src := `
int slot;
int buf[4];
func producer() {
	buf[2] = 7;
	slot = 2;
}
func consumer() {
	int s = slot;
	int v = buf[s];
	assert(v == 0, "consumer saw producer value");
}
func main() {
	int h1;
	int h2;
	h1 = spawn producer();
	h2 = spawn consumer();
	join(h1);
	join(h2);
}
`
	found := false
	for seed := int64(0); seed < 800 && !found; seed++ {
		r := record(t, src, vm.NewRandomScheduler(seed), vm.SC)
		if r.res.Failure == nil || r.res.Failure.Kind != vm.FailAssert {
			continue
		}
		found = true
		an := analyzeRec(t, r)
		checkAgainstEvents(t, r, an)
		symbolicAddr := false
		for _, s := range an.Threads[2].SAPs {
			if s.Kind == SAPRead && s.Addr == NoAddr {
				symbolicAddr = true
				if s.AddrIndex == nil {
					t.Fatal("symbolic address without index expression")
				}
			}
		}
		if !symbolicAddr {
			t.Error("expected a symbolic-address read SAP in the consumer")
		}
	}
	if !found {
		t.Skip("no failing interleaving found")
	}
}

func TestAnalysisNonSharedFiltered(t *testing.T) {
	// mainonly is not shared: it must produce no SAPs even though the VM
	// treats it as a local access.
	src := `
int mainonly;
int sharedv;
func child() { sharedv = 1; }
func main() {
	int h;
	h = spawn child();
	mainonly = 10;
	mainonly = mainonly + 1;
	int v = sharedv;
	join(h);
	assert(v == 1 && mainonly == 11, "trigger");
}
`
	found := false
	for seed := int64(0); seed < 300 && !found; seed++ {
		r := record(t, src, vm.NewRandomScheduler(seed), vm.SC)
		if r.res.Failure == nil || r.res.Failure.Kind != vm.FailAssert {
			continue
		}
		found = true
		an := analyzeRec(t, r)
		checkAgainstEvents(t, r, an)
		for _, s := range an.AllSAPs() {
			if s.Kind.IsMemory() && r.prog.Globals[s.Var].Name == "mainonly" {
				t.Error("non-shared global produced a SAP")
			}
		}
	}
	if !found {
		t.Skip("no failing seed (assert needs v==1 miss)")
	}
}

func TestAnalysisDeepCalls(t *testing.T) {
	src := `
int x;
func leaf(v) {
	x = v;
	return v * 2;
}
func mid(v) {
	int r = leaf(v + 1);
	return r + 1;
}
func main() {
	int h;
	h = spawn helper();
	int r = mid(10);
	join(h);
	assert(x == 11, "x overwritten by helper");
}
func helper() {
	x = 99;
}
`
	found := false
	for seed := int64(0); seed < 300 && !found; seed++ {
		r := record(t, src, vm.NewRandomScheduler(seed), vm.SC)
		if r.res.Failure == nil || r.res.Failure.Kind != vm.FailAssert {
			continue
		}
		found = true
		an := analyzeRec(t, r)
		checkAgainstEvents(t, r, an)
	}
	if !found {
		t.Skip("no failing seed")
	}
}

func TestSAPStringAndHelpers(t *testing.T) {
	s := &SAP{Thread: 1, Seq: 2, Kind: SAPRead, Var: 0, Addr: 3, Sym: symbolic.NewSym(0, "R")}
	if s.String() == "" {
		t.Error("SAP must render")
	}
	if !SAPRead.IsMemory() || SAPLock.IsMemory() {
		t.Error("IsMemory misclassifies")
	}
	if !SAPLock.IsSync() || SAPWrite.IsSync() {
		t.Error("IsSync misclassifies")
	}
	if !SAPYield.MustInterleave() || SAPLock.MustInterleave() {
		t.Error("MustInterleave misclassifies")
	}
}
