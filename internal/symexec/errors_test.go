package symexec

import (
	"strings"
	"testing"

	"repro/internal/ballarus"
	"repro/internal/ir"
	"repro/internal/trace"
)

// compileFP compiles a program and its Ball–Larus numbering.
func compileFP(t *testing.T, src string) (*ir.Program, []*ballarus.FuncPaths) {
	t.Helper()
	prog, err := ir.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := ballarus.ProgramPaths(prog)
	if err != nil {
		t.Fatal(err)
	}
	return prog, paths
}

const tinySrc = `
int x;
func main() {
	x = 1;
	int v = x;
	assert(v == 0, "bug");
}
`

func TestAnalyzeRejectsCorruptLogs(t *testing.T) {
	prog, paths := compileFP(t, tinySrc)
	cases := []struct {
		name   string
		events []trace.Event
		cuts   []uint64
		want   string
	}{
		{"empty log", nil, nil, "empty path log"},
		{"path outside activation", []trace.Event{{Kind: trace.EvPath, Arg: 0}}, nil, "outside activation"},
		{"unbalanced exit", []trace.Event{{Kind: trace.EvExit}}, nil, "unbalanced exit"},
		{"bad function id", []trace.Event{{Kind: trace.EvEnter, Arg: 99}}, nil, "bad function id"},
		{"unclosed activation", []trace.Event{{Kind: trace.EvEnter, Arg: 0}}, nil, "unclosed"},
		{"partial without cut", []trace.Event{
			{Kind: trace.EvEnter, Arg: 0},
			{Kind: trace.EvPartial, Arg: 0, Arg2: 1},
		}, nil, "without a cut"},
		{"out of range path", []trace.Event{
			{Kind: trace.EvEnter, Arg: 0},
			{Kind: trace.EvPath, Arg: 999999},
		}, nil, "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			log := &trace.PathLog{}
			log.SetThreadMeta(0, -1, 0)
			for _, e := range c.events {
				log.Append(0, e)
			}
			for _, cut := range c.cuts {
				log.AppendCut(0, cut)
			}
			_, err := Analyze(prog, paths, log, Options{Failure: FailureSpec{Thread: 0, Site: 1}})
			if err == nil {
				t.Fatalf("corrupt log accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestAnalyzeRejectsWrongFailureSite(t *testing.T) {
	prog, paths := compileFP(t, tinySrc)
	mainFn := prog.Funcs[prog.MainID]
	fp := paths[prog.MainID]
	// Build a legitimate complete log for main.
	log := &trace.PathLog{}
	log.SetThreadMeta(0, -1, 0)
	log.Append(0, trace.Event{Kind: trace.EvEnter, Arg: uint64(prog.MainID)})
	// Find the full path id by simulating the single path.
	trk := ballarus.NewTracker(fp)
	cur := mainFn.Entry
	for {
		if ret, ok := cur.Term.(*ir.Return); ok {
			_ = ret
			log.Append(0, trace.Event{Kind: trace.EvPath, Arg: trk.Return(cur.ID)})
			break
		}
		j := cur.Term.(*ir.Jump)
		trk.TakeEdge(cur.ID, j.Target.ID)
		cur = j.Target
	}
	log.Append(0, trace.Event{Kind: trace.EvExit})
	// Site 42 does not exist.
	if _, err := Analyze(prog, paths, log, Options{Failure: FailureSpec{Thread: 0, Site: 42}}); err == nil {
		t.Fatal("wrong failure site accepted")
	}
}

func TestAnalyzeMissingSpawnArgs(t *testing.T) {
	prog, paths := compileFP(t, `
int x;
func child() { x = 1; }
func main() {
	int h = spawn child();
	join(h);
	int v = x;
	assert(v == 0, "bug");
}
`)
	// A thread claiming parent 0 index 5 was never spawned by the log.
	log := &trace.PathLog{}
	log.SetThreadMeta(0, -1, 0)
	log.Append(0, trace.Event{Kind: trace.EvEnter, Arg: uint64(prog.MainID)})
	log.Append(0, trace.Event{Kind: trace.EvPartial, Arg: 0, Arg2: 1})
	log.AppendCut(0, 0)
	log.SetThreadMeta(1, 0, 5)
	log.Append(1, trace.Event{Kind: trace.EvEnter, Arg: uint64(prog.FuncByName("child"))})
	log.Append(1, trace.Event{Kind: trace.EvPartial, Arg: 0, Arg2: 1})
	log.AppendCut(1, 0)
	_, err := Analyze(prog, paths, log, Options{Failure: FailureSpec{Thread: 0, Site: 1}})
	if err == nil {
		t.Fatal("unspawned thread accepted")
	}
	if !strings.Contains(err.Error(), "spawn") {
		t.Fatalf("unexpected error: %v", err)
	}
}
