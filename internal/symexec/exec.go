package symexec

import (
	"fmt"

	"repro/internal/ballarus"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/symbolic"
	"repro/internal/trace"
)

// Options parameterizes the analysis.
type Options struct {
	// Shared marks thread-shared globals (nil treats all globals as
	// shared, matching the VM's convention).
	Shared []bool
	// Inputs are the deterministic program inputs of the recorded run.
	Inputs []int64
	// Failure identifies the failing assertion. It is required unless
	// NoBug is set; with NoBug, a Thread of NoThread marks a recording
	// that ended without an assertion failure.
	Failure FailureSpec
	// NoBug builds a benign analysis for predictive passes (the race
	// detector) that explore the recorded run's full feasible-interleaving
	// space instead of reproducing its failure: Fbug becomes the constant
	// true. When Failure still names a failing assertion, that assertion's
	// condition — false in the recorded run — is dropped rather than added
	// to Fpath: the thread stopped there, so its outcome constrains
	// nothing that executed. With Failure.Thread == NoThread every
	// recorded assertion held and joins Fpath as usual.
	NoBug bool
	// Locks optionally maps instructions to their statically must-held
	// locksets (staticanalysis.Result.Must); memory SAPs are stamped with
	// them.
	Locks map[ir.Instr]ir.LockSet
}

// Analyze symbolically re-executes the recorded run.
func Analyze(prog *ir.Program, paths []*ballarus.FuncPaths, log *trace.PathLog, opts Options) (*Analysis, error) {
	shared := opts.Shared
	if shared == nil {
		shared = make([]bool, len(prog.Globals))
		for i := range shared {
			shared[i] = true
		}
	}
	g := &globalCtx{
		prog:      prog,
		paths:     paths,
		layout:    ir.NewLayout(prog),
		shared:    shared,
		inputs:    opts.Inputs,
		namer:     &symbolic.Namer{},
		spawnArgs: map[trace.ThreadID][]symbolic.Expr{},
		keyToTid:  map[threadKey]trace.ThreadID{},
		readOf:    map[symbolic.SymID]*SAP{},
		locks:     opts.Locks,
	}
	an := &Analysis{
		Prog:      prog,
		BugThread: opts.Failure.Thread,
		ReadOf:    g.readOf,
		Shared:    shared,
	}
	trees := make([]*threadTree, len(log.Threads))
	for i := range log.Threads {
		tree, err := buildTree(paths, &log.Threads[i])
		if err != nil {
			return nil, err
		}
		trees[i] = tree
		if tree.parent >= 0 {
			g.keyToTid[threadKey{parent: tree.parent, index: tree.index}] = tree.thread
		}
	}
	// Thread ids are assigned in spawn order, so every parent precedes its
	// children and spawn arguments are available when needed.
	for i, tree := range trees {
		tid := trace.ThreadID(i)
		var args []symbolic.Expr
		if tree.parent >= 0 {
			var ok bool
			args, ok = g.spawnArgs[tid]
			if !ok {
				return nil, fmt.Errorf("symexec: thread %d has no recorded spawn arguments", tid)
			}
		}
		ex := &texec{g: g, tid: tid, nonShared: newLocalState(prog, g.layout)}
		tt := &ThreadTrace{Thread: tid, Parent: tree.parent, Index: tree.index}
		ex.tt = tt
		ex.emit(&SAP{Kind: SAPStart})
		if _, err := ex.runActivation(tree.root, args); err != nil {
			return nil, err
		}
		if tree.exited() {
			ex.emit(&SAP{Kind: SAPExit})
			tt.Exited = true
		}
		// Resolve assertion records: the failing thread's last assertion is
		// the bug; every other assertion held on the recorded path.
		for k, ar := range ex.asserts {
			failing := opts.Failure.Thread != NoThread && tid == opts.Failure.Thread && k == len(ex.asserts)-1
			if failing {
				if ar.site != opts.Failure.Site {
					return nil, fmt.Errorf("symexec: thread %d last assertion is site %d, failure reports site %d", tid, ar.site, opts.Failure.Site)
				}
				if opts.NoBug {
					// The recorded run ended at this assertion either way;
					// its (false) condition constrains nothing that ran.
					continue
				}
				an.Bug = symbolic.Not(ar.cond)
			} else {
				if _, isConst := ar.cond.(*symbolic.BoolConst); !isConst {
					tt.PathCond = append(tt.PathCond, ar.cond)
				}
			}
		}
		an.Threads = append(an.Threads, tt)
	}
	if an.Bug == nil {
		if !opts.NoBug {
			return nil, fmt.Errorf("symexec: failing thread %d recorded no assertion at site %d", opts.Failure.Thread, opts.Failure.Site)
		}
		an.Bug = symbolic.True
	}
	an.NumSyms = g.namer.Count()
	return an, nil
}

type threadKey struct {
	parent trace.ThreadID
	index  int32
}

type globalCtx struct {
	prog      *ir.Program
	paths     []*ballarus.FuncPaths
	layout    *ir.Layout
	shared    []bool
	inputs    []int64
	namer     *symbolic.Namer
	spawnArgs map[trace.ThreadID][]symbolic.Expr
	keyToTid  map[threadKey]trace.ThreadID
	readOf    map[symbolic.SymID]*SAP
	locks     map[ir.Instr]ir.LockSet
}

// lockAt returns the statically must-held lockset at an instruction, or
// the empty set when no lockset analysis was supplied.
func (g *globalCtx) lockAt(in ir.Instr) ir.LockSet {
	if g.locks == nil {
		return 0
	}
	return g.locks[in]
}

// assertRec is an executed assertion occurrence.
type assertRec struct {
	site int
	cond symbolic.Expr
}

// texec is the per-thread symbolic executor.
type texec struct {
	g         *globalCtx
	tid       trace.ThreadID
	tt        *ThreadTrace
	asserts   []assertRec
	nonShared *localState
	children  int32
	aborted   bool
	// curPos is the source position of the instruction currently being
	// executed; emit stamps it onto every SAP.
	curPos minic.Pos
}

// emit appends a SAP, filling in its identity and the source position of
// the instruction being executed (zero for the Start/Exit
// pseudo-operations, which are emitted outside execInstr).
func (e *texec) emit(s *SAP) *SAP {
	s.Thread = e.tid
	s.Seq = len(e.tt.SAPs)
	s.Pos = e.curPos
	e.tt.SAPs = append(e.tt.SAPs, s)
	return s
}

// cond adds a path-condition conjunct (constants are dropped; a false
// constant is an internal inconsistency).
func (e *texec) cond(c symbolic.Expr) error {
	if bc, ok := c.(*symbolic.BoolConst); ok {
		if !bc.V {
			return fmt.Errorf("symexec: thread %d produced an unsatisfiable concrete path condition", e.tid)
		}
		return nil
	}
	e.tt.PathCond = append(e.tt.PathCond, c)
	return nil
}

func (e *texec) errf(format string, args ...any) error {
	return fmt.Errorf("symexec: thread %d: %s", e.tid, fmt.Sprintf(format, args...))
}

// runActivation executes one activation along its decoded blocks.
func (e *texec) runActivation(act *activation, args []symbolic.Expr) (symbolic.Expr, error) {
	fn := e.g.prog.Funcs[act.fn]
	regs := make([]symbolic.Expr, fn.NumRegs)
	copy(regs, args)
	if len(act.blocks) == 0 {
		// A created-but-never-run thread: nothing executed.
		e.aborted = true
		return symbolic.Int(0), nil
	}
	if act.blocks[0] != fn.Entry.ID {
		return nil, e.errf("activation of %s starts at b%d, not entry", fn.Name, act.blocks[0])
	}
	callIdx := 0
	pos := 0
	for {
		block := fn.Blocks[act.blocks[pos]]
		last := pos == len(act.blocks)-1
		budget := len(block.Instrs)
		halfWait := false
		if act.partial && last {
			budget = int(act.cut / 2)
			halfWait = act.cut%2 == 1
			if budget > len(block.Instrs) {
				return nil, e.errf("cut %d exceeds block size %d in %s", act.cut, len(block.Instrs), fn.Name)
			}
		}
		for ip := 0; ip < budget; ip++ {
			if err := e.execInstr(fn, regs, block.Instrs[ip], act, &callIdx); err != nil {
				return nil, err
			}
			if e.aborted {
				return symbolic.Int(0), nil
			}
		}
		if act.partial && last {
			if halfWait {
				// The pending instruction's release half executed.
				w, ok := block.Instrs[budget].(*ir.SyncOp)
				if !ok || w.Kind != ir.BuiltinWait {
					return nil, e.errf("half-executed cut does not point at a wait in %s", fn.Name)
				}
				e.emit(&SAP{Kind: SAPWaitBegin, Cond: w.Obj, Mutex: w.Obj2})
			}
			e.aborted = true
			return symbolic.Int(0), nil
		}
		// Terminator.
		switch term := block.Term.(type) {
		case *ir.Return:
			if !last || !act.returns {
				return nil, e.errf("return in %s at non-final decoded block", fn.Name)
			}
			if term.Src == ir.NoReg {
				return symbolic.Int(0), nil
			}
			return regs[term.Src], nil
		case *ir.Jump:
			if last {
				return nil, e.errf("decoded path for %s ends at a jump", fn.Name)
			}
			next := act.blocks[pos+1]
			if next != term.Target.ID {
				return nil, e.errf("jump target mismatch in %s: decoded b%d, ir b%d", fn.Name, next, term.Target.ID)
			}
			pos++
		case *ir.Branch:
			if last {
				return nil, e.errf("decoded path for %s ends at a branch", fn.Name)
			}
			next := act.blocks[pos+1]
			c := regs[term.Cond]
			switch next {
			case term.Then.ID:
				if err := e.condTaken(c, true); err != nil {
					return nil, err
				}
			case term.Else.ID:
				if err := e.condTaken(c, false); err != nil {
					return nil, err
				}
			default:
				return nil, e.errf("branch in %s cannot reach decoded b%d", fn.Name, next)
			}
			pos++
		default:
			return nil, e.errf("unknown terminator in %s", fn.Name)
		}
	}
}

// condTaken records the path condition of a branch decision.
func (e *texec) condTaken(c symbolic.Expr, takenThen bool) error {
	if bc, ok := c.(*symbolic.BoolConst); ok {
		if bc.V != takenThen {
			return e.errf("concrete branch condition %v contradicts recorded path", bc.V)
		}
		return nil
	}
	if takenThen {
		return e.cond(c)
	}
	return e.cond(symbolic.Not(c))
}

// execInstr symbolically executes one instruction.
func (e *texec) execInstr(fn *ir.Func, regs []symbolic.Expr, in ir.Instr, act *activation, callIdx *int) error {
	if p := ir.PosOf(in); p.Line != 0 {
		e.curPos = p
	}
	switch x := in.(type) {
	case *ir.Const:
		regs[x.Dst] = symbolic.Int(x.V)
	case *ir.ConstBool:
		regs[x.Dst] = symbolic.Bool(x.V)
	case *ir.Mov:
		regs[x.Dst] = regs[x.Src]
	case *ir.UnOp:
		regs[x.Dst] = symbolic.NewUnary(x.Op, regs[x.X])
	case *ir.BinOp:
		regs[x.Dst] = symbolic.NewBinary(x.Op, regs[x.X], regs[x.Y])
	case *ir.LoadG:
		if e.g.shared[x.Global] {
			sym := e.fresh(x.Global)
			s := e.emit(&SAP{Kind: SAPRead, Var: x.Global, Addr: e.g.layout.Base[x.Global], Sym: sym, MustLocks: e.g.lockAt(x)})
			e.g.readOf[sym.ID] = s
			regs[x.Dst] = sym
		} else {
			regs[x.Dst] = e.nonShared.readScalar(x.Global)
		}
	case *ir.StoreG:
		if e.g.shared[x.Global] {
			e.emit(&SAP{Kind: SAPWrite, Var: x.Global, Addr: e.g.layout.Base[x.Global], Val: regs[x.Src], MustLocks: e.g.lockAt(x)})
		} else {
			e.nonShared.writeScalar(x.Global, regs[x.Src])
		}
	case *ir.LoadA:
		idx := regs[x.Idx]
		if e.g.shared[x.Array] {
			sym := e.fresh(x.Array)
			s := &SAP{Kind: SAPRead, Var: x.Array, Sym: sym, MustLocks: e.g.lockAt(x)}
			if err := e.fillAddr(s, x.Array, idx); err != nil {
				return err
			}
			e.emit(s)
			e.g.readOf[sym.ID] = s
			regs[x.Dst] = sym
		} else {
			v, err := e.nonShared.readArray(x.Array, idx)
			if err != nil {
				return e.errf("%v", err)
			}
			regs[x.Dst] = v
		}
	case *ir.StoreA:
		idx := regs[x.Idx]
		if e.g.shared[x.Array] {
			s := &SAP{Kind: SAPWrite, Var: x.Array, Val: regs[x.Src], MustLocks: e.g.lockAt(x)}
			if err := e.fillAddr(s, x.Array, idx); err != nil {
				return err
			}
			e.emit(s)
		} else {
			if err := e.nonShared.writeArray(x.Array, idx, regs[x.Src]); err != nil {
				return e.errf("%v", err)
			}
		}
	case *ir.Call:
		if *callIdx >= len(act.children) {
			return e.errf("call in %s has no recorded activation", fn.Name)
		}
		child := act.children[*callIdx]
		*callIdx++
		if child.fn != x.Func {
			return e.errf("recorded activation f%d does not match call of f%d", child.fn, x.Func)
		}
		args := make([]symbolic.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = regs[a]
		}
		v, err := e.runActivation(child, args)
		if err != nil {
			return err
		}
		if !e.aborted && x.Dst != ir.NoReg {
			regs[x.Dst] = v
		}
	case *ir.Spawn:
		key := threadKey{parent: e.tid, index: e.children}
		e.children++
		child, ok := e.g.keyToTid[key]
		if !ok {
			return e.errf("spawned thread (parent %d, index %d) missing from log", key.parent, key.index)
		}
		args := make([]symbolic.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = regs[a]
		}
		e.g.spawnArgs[child] = args
		e.emit(&SAP{Kind: SAPFork, Other: child})
		regs[x.Dst] = symbolic.Int(int64(child))
	case *ir.SyncOp:
		if err := e.execSync(x, regs); err != nil {
			return err
		}
	case *ir.Print:
		// Output is not part of the constraint system.
	case *ir.Input:
		k := regs[x.K]
		kc, ok := k.(*symbolic.IntConst)
		if !ok {
			return e.errf("input() with symbolic index is unsupported")
		}
		var v int64
		if kc.V >= 0 && kc.V < int64(len(e.g.inputs)) {
			v = e.g.inputs[kc.V]
		}
		regs[x.Dst] = symbolic.Int(v)
	case *ir.Assert:
		c := regs[x.Cond]
		if !c.IsBool() {
			return e.errf("assert condition is not boolean")
		}
		e.asserts = append(e.asserts, assertRec{site: x.Site, cond: c})
	default:
		return e.errf("unknown instruction %T", in)
	}
	return nil
}

// fillAddr resolves an array access address: concrete indices produce a
// flat address (with a bounds check against the recorded execution);
// symbolic indices keep the expression and add the bounds conditions the
// original execution must have satisfied.
func (e *texec) fillAddr(s *SAP, arr ir.GlobalID, idx symbolic.Expr) error {
	if ic, ok := idx.(*symbolic.IntConst); ok {
		addr, ok := e.g.layout.Addr(e.g.prog, arr, ic.V)
		if !ok {
			return e.errf("recorded path indexes %s out of bounds at %d", e.g.prog.Globals[arr].Name, ic.V)
		}
		s.Addr = addr
		return nil
	}
	s.Addr = NoAddr
	s.AddrIndex = idx
	size := int64(e.g.prog.Globals[arr].Size)
	if err := e.cond(symbolic.NewBinary(symbolic.OpGe, idx, symbolic.Int(0))); err != nil {
		return err
	}
	return e.cond(symbolic.NewBinary(symbolic.OpLt, idx, symbolic.Int(size)))
}

func (e *texec) execSync(x *ir.SyncOp, regs []symbolic.Expr) error {
	switch x.Kind {
	case ir.BuiltinLock:
		e.emit(&SAP{Kind: SAPLock, Mutex: x.Obj})
	case ir.BuiltinUnlock:
		e.emit(&SAP{Kind: SAPUnlock, Mutex: x.Obj})
	case ir.BuiltinWait:
		// A fully executed wait is its release half followed by its wake
		// half; everything between them (the signal, other threads'
		// critical sections) is other threads' SAPs.
		e.emit(&SAP{Kind: SAPWaitBegin, Cond: x.Obj, Mutex: x.Obj2})
		e.emit(&SAP{Kind: SAPWaitEnd, Cond: x.Obj, Mutex: x.Obj2})
	case ir.BuiltinSignal:
		e.emit(&SAP{Kind: SAPSignal, Cond: x.Obj})
	case ir.BuiltinBroadcast:
		e.emit(&SAP{Kind: SAPBroadcast, Cond: x.Obj})
	case ir.BuiltinJoin:
		h, ok := regs[x.Arg].(*symbolic.IntConst)
		if !ok {
			return e.errf("join with symbolic thread handle is unsupported")
		}
		e.emit(&SAP{Kind: SAPJoin, Other: trace.ThreadID(h.V)})
	case ir.BuiltinYield:
		e.emit(&SAP{Kind: SAPYield})
	case ir.BuiltinFence:
		e.emit(&SAP{Kind: SAPFence})
	default:
		return e.errf("unknown sync op %v", x.Kind)
	}
	return nil
}

// fresh mints the symbolic value a shared read returns, labeled like the
// paper's R^i_v variables.
func (e *texec) fresh(g ir.GlobalID) *symbolic.Sym {
	name := fmt.Sprintf("R_%s@t%d#%d", e.g.prog.Globals[g].Name, e.tid, len(e.tt.SAPs))
	return e.g.namer.Fresh(name)
}

// localState tracks non-shared globals per thread: exact for concrete
// writes, ordered write lists (the paper's delayed symbolic-address
// resolution) when indices are symbolic.
type localState struct {
	prog    *ir.Program
	scalars map[ir.GlobalID]symbolic.Expr
	arrays  map[ir.GlobalID]*arrayState
}

type arrayState struct {
	size        int64
	def         symbolic.Expr
	writes      []symbolic.SelectEntry
	allConcrete bool
}

func newLocalState(prog *ir.Program, layout *ir.Layout) *localState {
	return &localState{
		prog:    prog,
		scalars: map[ir.GlobalID]symbolic.Expr{},
		arrays:  map[ir.GlobalID]*arrayState{},
	}
}

func (ls *localState) readScalar(g ir.GlobalID) symbolic.Expr {
	if v, ok := ls.scalars[g]; ok {
		return v
	}
	return symbolic.Int(ls.prog.Globals[g].Init)
}

func (ls *localState) writeScalar(g ir.GlobalID, v symbolic.Expr) {
	ls.scalars[g] = v
}

func (ls *localState) array(g ir.GlobalID) *arrayState {
	if a, ok := ls.arrays[g]; ok {
		return a
	}
	gv := ls.prog.Globals[g]
	a := &arrayState{
		size:        int64(gv.Size),
		def:         symbolic.Int(gv.Init),
		allConcrete: true,
	}
	ls.arrays[g] = a
	return a
}

func (ls *localState) readArray(g ir.GlobalID, idx symbolic.Expr) (symbolic.Expr, error) {
	a := ls.array(g)
	if ic, ok := idx.(*symbolic.IntConst); ok {
		if ic.V < 0 || ic.V >= a.size {
			return nil, fmt.Errorf("index %d out of bounds for %s", ic.V, ls.prog.Globals[g].Name)
		}
	}
	return symbolic.NewSelect(a.writes, idx, a.def), nil
}

func (ls *localState) writeArray(g ir.GlobalID, idx, val symbolic.Expr) error {
	a := ls.array(g)
	ic, concrete := idx.(*symbolic.IntConst)
	if concrete && (ic.V < 0 || ic.V >= a.size) {
		return fmt.Errorf("index %d out of bounds for %s", ic.V, ls.prog.Globals[g].Name)
	}
	if concrete && a.allConcrete {
		// Compact: replace any previous write to the same concrete index.
		for i, w := range a.writes {
			if prev, ok := w.Index.(*symbolic.IntConst); ok && prev.V == ic.V {
				a.writes[i].Value = val
				return nil
			}
		}
		a.writes = append(a.writes, symbolic.SelectEntry{Index: idx, Value: val})
		return nil
	}
	if !concrete {
		a.allConcrete = false
	}
	a.writes = append(a.writes, symbolic.SelectEntry{Index: idx, Value: val})
	return nil
}
