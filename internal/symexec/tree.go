package symexec

import (
	"fmt"

	"repro/internal/ballarus"
	"repro/internal/ir"
	"repro/internal/trace"
)

// activation is one function activation reconstructed from the path log:
// the decoded block sequence plus the nested calls in order.
type activation struct {
	fn ir.FuncID
	// blocks is the concatenation of the activation's decoded segments.
	blocks []ir.BlockID
	// returns reports whether the final segment ended in a return.
	returns bool
	// partial marks an activation cut short by the failure; cut encodes
	// 2*ip (+1 when the pending wait's release half executed) within the
	// final block.
	partial bool
	cut     uint64
	// children are the nested activations in call order.
	children []*activation
}

// threadTree is a thread's reconstructed activation forest (a single root:
// the thread's entry function).
type threadTree struct {
	thread trace.ThreadID
	parent trace.ThreadID
	index  int32
	root   *activation
}

// buildTree reconstructs the activation tree of one thread log by replaying
// the enter/path/exit event nesting.
func buildTree(paths []*ballarus.FuncPaths, tl *trace.ThreadLog) (*threadTree, error) {
	if len(tl.Events) == 0 {
		return nil, fmt.Errorf("symexec: thread %d has an empty path log", tl.Thread)
	}
	var stack []*activation
	var root *activation
	cutIdx := 0
	push := func(fn ir.FuncID) {
		act := &activation{fn: fn}
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			top.children = append(top.children, act)
		} else {
			root = act
		}
		stack = append(stack, act)
	}
	for i, e := range tl.Events {
		switch e.Kind {
		case trace.EvEnter:
			if int(e.Arg) >= len(paths) {
				return nil, fmt.Errorf("symexec: thread %d event %d: bad function id %d", tl.Thread, i, e.Arg)
			}
			if len(stack) == 0 && root != nil {
				return nil, fmt.Errorf("symexec: thread %d event %d: second root activation", tl.Thread, i)
			}
			push(ir.FuncID(e.Arg))
		case trace.EvPath:
			if len(stack) == 0 {
				return nil, fmt.Errorf("symexec: thread %d event %d: path outside activation", tl.Thread, i)
			}
			top := stack[len(stack)-1]
			seg, err := paths[top.fn].Decode(e.Arg)
			if err != nil {
				return nil, fmt.Errorf("symexec: thread %d event %d: %w", tl.Thread, i, err)
			}
			top.blocks = append(top.blocks, seg.Blocks...)
			top.returns = seg.Returns
		case trace.EvPartial:
			if len(stack) == 0 {
				return nil, fmt.Errorf("symexec: thread %d event %d: partial outside activation", tl.Thread, i)
			}
			top := stack[len(stack)-1]
			seg, err := paths[top.fn].DecodePartial(e.Arg)
			if err != nil {
				return nil, fmt.Errorf("symexec: thread %d event %d: %w", tl.Thread, i, err)
			}
			blocks := seg.Blocks
			if int(e.Arg2) < len(blocks) {
				blocks = blocks[:e.Arg2]
			}
			top.blocks = append(top.blocks, blocks...)
			top.partial = true
			top.returns = false
			if cutIdx >= len(tl.Cuts) {
				return nil, fmt.Errorf("symexec: thread %d event %d: partial without a cut record", tl.Thread, i)
			}
			top.cut = tl.Cuts[cutIdx]
			cutIdx++
			stack = stack[:len(stack)-1]
		case trace.EvExit:
			if len(stack) == 0 {
				return nil, fmt.Errorf("symexec: thread %d event %d: unbalanced exit", tl.Thread, i)
			}
			stack = stack[:len(stack)-1]
		default:
			return nil, fmt.Errorf("symexec: thread %d event %d: unexpected kind %v", tl.Thread, i, e.Kind)
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("symexec: thread %d: %d unclosed activations", tl.Thread, len(stack))
	}
	if root == nil {
		return nil, fmt.Errorf("symexec: thread %d has no root activation", tl.Thread)
	}
	return &threadTree{thread: tl.Thread, parent: tl.Parent, index: tl.Index, root: root}, nil
}

// exited reports whether the tree's thread ran to completion.
func (t *threadTree) exited() bool { return !anyPartial(t.root) && t.root.returns }

func anyPartial(a *activation) bool {
	if a.partial {
		return true
	}
	for _, c := range a.children {
		if anyPartial(c) {
			return true
		}
	}
	return false
}
