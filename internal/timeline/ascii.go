package timeline

import (
	"fmt"
	"io"
	"strings"
)

// asciiColWidth is each thread lane's column width in the terminal view.
const asciiColWidth = 22

// RenderASCII writes a terminal view of the timeline: per execution, one
// column per thread and one row per logical timestamp, events in their
// lane. A quick look without leaving the terminal; the Chrome artifact is
// the one to load for anything bigger than a screenful.
func RenderASCII(w io.Writer, tl *Timeline) {
	for i, ex := range tl.Execs {
		if i > 0 {
			fmt.Fprintln(w)
		}
		renderExec(w, tl.Program, ex)
	}
}

func renderExec(w io.Writer, program string, ex *Execution) {
	title := ex.Name
	if program != "" {
		title = program + ": " + ex.Name
	}
	if ex.Partial {
		title += fmt.Sprintf(" (partial, depth %d)", ex.Depth)
	}
	fmt.Fprintf(w, "== %s ==\n", title)
	var hdr strings.Builder
	hdr.WriteString("      ")
	for t := 0; t < ex.Threads; t++ {
		hdr.WriteString(pad(fmt.Sprintf("t%d", t)))
	}
	fmt.Fprintln(w, strings.TrimRight(hdr.String(), " "))

	// arrowAt annotates the source row of each arrow.
	arrowAt := map[int64]string{}
	for _, a := range ex.Arrows {
		tag := fmt.Sprintf("%s->t%d", a.Kind, a.ToThread)
		if prev, ok := arrowAt[a.FromTime]; ok {
			tag = prev + "," + tag
		}
		arrowAt[a.FromTime] = tag
	}

	for _, e := range ex.Events {
		var row strings.Builder
		fmt.Fprintf(&row, "%5d ", e.Time)
		for t := 0; t < ex.Threads; t++ {
			cell := ""
			if t == e.Thread {
				cell = e.Label
				if e.Pos != "" {
					cell += " @" + e.Pos
				}
			}
			row.WriteString(pad(cell))
		}
		if tag, ok := arrowAt[e.Time]; ok {
			row.WriteString("  ~" + tag)
		}
		fmt.Fprintln(w, strings.TrimRight(row.String(), " "))
	}
}

// pad clips or right-pads a cell to the lane width.
func pad(s string) string {
	if len(s) > asciiColWidth-2 {
		s = s[:asciiColWidth-5] + "..."
	}
	return s + strings.Repeat(" ", asciiColWidth-len(s))
}
