// Package timeline is the pipeline's flight recorder: it turns the three
// executions the reproduction touches — the recorded run, the solved SAP
// schedule, and the deterministic replay — plus the losing portfolio
// attempts' partial orders into one unified timeline artifact. The
// artifact renders two ways: Chrome trace-event JSON (EncodeChrome;
// loadable in Perfetto or chrome://tracing, one track per thread, spawn/
// join and race-flip arrows as flow events) and a terminal ASCII view
// (RenderASCII) for quick looks.
//
// Everything in the model is logical — event indices, not wall clock — so
// the artifact built from a given trace is byte-identical across runs,
// which is what lets golden tests pin it and diffs of two artifacts mean
// something.
package timeline

import (
	"fmt"

	"repro/internal/constraints"
	"repro/internal/solver"
	"repro/internal/symexec"
	"repro/internal/vm"
)

// Well-known execution names. Attempt executions use "attempt:" plus the
// solver stage name.
const (
	ExecRecorded = "recorded"
	ExecSolved   = "solved"
	ExecReplay   = "replay"
)

// Timeline is the unified artifact: one Execution per run of the program
// the pipeline saw (or partially constructed).
type Timeline struct {
	// Program is the benchmark or source name, for display.
	Program string
	Execs   []*Execution
}

// Execution is one interleaving: a set of per-thread event lanes over a
// shared logical clock.
type Execution struct {
	Name string
	// Threads is the lane count (thread ids are 0..Threads-1).
	Threads int
	// Events in increasing Time order.
	Events []Event
	// Arrows are cross-lane edges: spawn→start, exit→join, and the
	// explainability layer's race-flip arrows.
	Arrows []Arrow
	// Partial marks an execution reconstructed from a losing solver
	// attempt's partial order: times are topological ranks, not a
	// validated schedule. Depth is the attempt's decision depth.
	Partial bool
	Depth   int
}

// Event is one visible operation on a thread's lane.
type Event struct {
	Thread int
	// Time is the logical timestamp: the event's index in the
	// execution's global order.
	Time int64
	// Kind is the operation class ("read", "write", "lock", …), stable
	// across renderers.
	Kind string
	// Label is the display name, e.g. "write g2=1".
	Label string
	// Pos is the source position "line:col" when known.
	Pos string
}

// Arrow kinds.
const (
	ArrowSpawn = "spawn"
	ArrowJoin  = "join"
	ArrowFlip  = "flip"
)

// Arrow is a cross-thread edge between two events, identified by lane and
// logical time.
type Arrow struct {
	Kind       string
	Label      string
	FromThread int
	FromTime   int64
	ToThread   int
	ToTime     int64
}

// FromEvents builds an execution from a VM visible-event capture (the
// recorded run or the replay). Event times are the VM's logical
// timestamps; spawn/join arrows are derived from the start/exit events.
func FromEvents(name string, events []vm.VisibleEvent, threads int) *Execution {
	ex := &Execution{Name: name, Threads: threads}
	// startAt/exitAt find the rendezvous counterparts for arrows.
	startAt := map[int]int64{}
	exitAt := map[int]int64{}
	for _, ev := range events {
		if int(ev.Thread) >= ex.Threads {
			ex.Threads = int(ev.Thread) + 1
		}
		e := Event{
			Thread: int(ev.Thread),
			Time:   ev.Time,
			Kind:   ev.Kind.String(),
			Label:  eventLabel(ev),
		}
		ex.Events = append(ex.Events, e)
		switch ev.Kind {
		case vm.EvStart:
			startAt[int(ev.Thread)] = ev.Time
		case vm.EvExit:
			exitAt[int(ev.Thread)] = ev.Time
		}
	}
	for _, ev := range events {
		switch ev.Kind {
		case vm.EvSpawn:
			if t, ok := startAt[int(ev.Other)]; ok {
				ex.Arrows = append(ex.Arrows, Arrow{
					Kind: ArrowSpawn, Label: fmt.Sprintf("spawn t%d", ev.Other),
					FromThread: int(ev.Thread), FromTime: ev.Time,
					ToThread: int(ev.Other), ToTime: t,
				})
			}
		case vm.EvJoin:
			if t, ok := exitAt[int(ev.Other)]; ok {
				ex.Arrows = append(ex.Arrows, Arrow{
					Kind: ArrowJoin, Label: fmt.Sprintf("join t%d", ev.Other),
					FromThread: int(ev.Other), FromTime: t,
					ToThread: int(ev.Thread), ToTime: ev.Time,
				})
			}
		}
	}
	return ex
}

// eventLabel renders a VM event without its thread prefix.
func eventLabel(e vm.VisibleEvent) string {
	switch e.Kind {
	case vm.EvRead, vm.EvWrite, vm.EvDrain:
		return fmt.Sprintf("%s g%d@%d=%d", e.Kind, e.Var, e.Addr, e.Value)
	case vm.EvSpawn, vm.EvJoin:
		return fmt.Sprintf("%s t%d", e.Kind, e.Other)
	case vm.EvLock, vm.EvUnlock:
		return fmt.Sprintf("%s m%d", e.Kind, e.Obj)
	case vm.EvWaitBegin, vm.EvWaitEnd:
		return fmt.Sprintf("%s c%d/m%d", e.Kind, e.Obj, e.Obj2)
	case vm.EvSignal, vm.EvBroadcast:
		return fmt.Sprintf("%s c%d", e.Kind, e.Obj)
	}
	return e.Kind.String()
}

// FromOrder builds an execution from a total (or partial-order-consistent)
// SAP sequence: the solved schedule, or a losing attempt's topological
// snapshot. Times are sequence indices. When a witness is given, read
// events are labeled with the concrete value the schedule makes them
// observe.
func FromOrder(name string, sys *constraints.System, order []constraints.SAPRef, w *constraints.Witness) *Execution {
	ex := &Execution{Name: name, Threads: len(sys.Threads)}
	startAt := map[int]int64{}
	exitAt := map[int]int64{}
	for i, r := range order {
		s := sys.SAP(r)
		e := Event{
			Thread: int(s.Thread),
			Time:   int64(i),
			Kind:   s.Kind.String(),
			Label:  sapLabel(s, w),
		}
		if s.Pos.Line != 0 {
			e.Pos = s.Pos.String()
		}
		ex.Events = append(ex.Events, e)
		switch s.Kind {
		case symexec.SAPStart:
			startAt[int(s.Thread)] = int64(i)
		case symexec.SAPExit:
			exitAt[int(s.Thread)] = int64(i)
		}
	}
	for i, r := range order {
		s := sys.SAP(r)
		switch s.Kind {
		case symexec.SAPFork:
			if t, ok := startAt[int(s.Other)]; ok {
				ex.Arrows = append(ex.Arrows, Arrow{
					Kind: ArrowSpawn, Label: fmt.Sprintf("spawn t%d", s.Other),
					FromThread: int(s.Thread), FromTime: int64(i),
					ToThread: int(s.Other), ToTime: t,
				})
			}
		case symexec.SAPJoin:
			if t, ok := exitAt[int(s.Other)]; ok {
				ex.Arrows = append(ex.Arrows, Arrow{
					Kind: ArrowJoin, Label: fmt.Sprintf("join t%d", s.Other),
					FromThread: int(s.Other), FromTime: t,
					ToThread: int(s.Thread), ToTime: int64(i),
				})
			}
		}
	}
	return ex
}

// FromPartial builds an execution from a losing solver attempt's partial
// snapshot (solver.Stats.Partial): the order is only
// hard-edge-and-decided-prefix consistent, so the execution is marked
// Partial and carries the attempt's decision depth.
func FromPartial(name string, sys *constraints.System, st *solver.Stats) *Execution {
	if st == nil || st.Partial == nil {
		return nil
	}
	ex := FromOrder(name, sys, st.Partial, nil)
	ex.Partial = true
	ex.Depth = st.PartialDepth
	return ex
}

// sapLabel renders a SAP without its thread/seq prefix; reads get their
// witness value when one is known.
func sapLabel(s *symexec.SAP, w *constraints.Witness) string {
	switch s.Kind {
	case symexec.SAPRead:
		if w != nil && s.Sym != nil {
			if v, ok := w.Env[s.Sym.ID]; ok {
				return fmt.Sprintf("read g%d@%d=%d", s.Var, s.Addr, v)
			}
		}
		return fmt.Sprintf("read g%d@%d", s.Var, s.Addr)
	case symexec.SAPWrite:
		return fmt.Sprintf("write g%d@%d", s.Var, s.Addr)
	case symexec.SAPFork, symexec.SAPJoin:
		return fmt.Sprintf("%s t%d", s.Kind, s.Other)
	case symexec.SAPLock, symexec.SAPUnlock:
		return fmt.Sprintf("%s m%d", s.Kind, s.Mutex)
	case symexec.SAPWaitBegin, symexec.SAPWaitEnd:
		return fmt.Sprintf("%s c%d/m%d", s.Kind, s.Cond, s.Mutex)
	case symexec.SAPSignal, symexec.SAPBroadcast:
		return fmt.Sprintf("%s c%d", s.Kind, s.Cond)
	}
	return s.Kind.String()
}
