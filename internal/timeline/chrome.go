package timeline

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Chrome trace-event emission. The output follows the Trace Event Format
// ("JSON Object Format" flavor: a top-level object with a traceEvents
// array), which Perfetto and chrome://tracing load directly:
//
//   - each Execution is one process (pid); a process_name metadata event
//     names it ("recorded", "solved", "replay", "attempt:…"),
//   - each thread is one track (tid), named by a thread_name metadata
//     event,
//   - each Event is a complete ("X") slice of duration 1 at its logical
//     timestamp (the ts unit is microseconds, but nothing here is wall
//     clock — one tick per event keeps slices visible and diffs stable),
//   - each Arrow is a flow-event pair ("s" start, "f" finish with bp:"e")
//     binding to the slices at its endpoints.
//
// Marshaling uses structs only — no maps — so field order is fixed and
// the bytes are deterministic for a given timeline. Events are emitted
// one per line for greppable, diffable goldens.

// chromeArgs is the args payload; all fields optional.
type chromeArgs struct {
	// Name carries the process/thread name on "M" metadata events.
	Name string `json:"name,omitempty"`
	// SortIndex orders processes in the viewer (recorded, solved, replay,
	// then attempts).
	SortIndex int `json:"sort_index,omitempty"`
	// Pos is the SAP's source position "line:col".
	Pos string `json:"pos,omitempty"`
	// Partial/Depth annotate losing-attempt executions.
	Partial bool `json:"partial,omitempty"`
	Depth   int  `json:"depth,omitempty"`
}

// chromeEvent is one trace event.
type chromeEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	Ts   int64       `json:"ts"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	Dur  int64       `json:"dur,omitempty"`
	Cat  string      `json:"cat,omitempty"`
	ID   int         `json:"id,omitempty"`
	BP   string      `json:"bp,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeTrace is the top-level object.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// EncodeChrome renders the timeline as Chrome trace-event JSON bytes.
// The encoding is pure: same timeline in, same bytes out.
func EncodeChrome(tl *Timeline) ([]byte, error) {
	var evs []chromeEvent
	arrowID := 0
	for i, ex := range tl.Execs {
		pid := i + 1
		name := ex.Name
		if tl.Program != "" {
			name = tl.Program + ": " + ex.Name
		}
		meta := &chromeArgs{Name: name, SortIndex: pid, Partial: ex.Partial, Depth: ex.Depth}
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Args: meta,
		})
		for t := 0; t < ex.Threads; t++ {
			evs = append(evs, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: t + 1,
				Args: &chromeArgs{Name: fmt.Sprintf("t%d", t)},
			})
		}
		for _, e := range ex.Events {
			ce := chromeEvent{
				Name: e.Label, Ph: "X", Ts: e.Time, Dur: 1,
				Pid: pid, Tid: e.Thread + 1, Cat: e.Kind,
			}
			if e.Pos != "" {
				ce.Args = &chromeArgs{Pos: e.Pos}
			}
			evs = append(evs, ce)
		}
		for _, a := range ex.Arrows {
			arrowID++
			evs = append(evs,
				chromeEvent{
					Name: a.Label, Ph: "s", Ts: a.FromTime, Pid: pid,
					Tid: a.FromThread + 1, Cat: a.Kind, ID: arrowID,
				},
				chromeEvent{
					Name: a.Label, Ph: "f", Ts: a.ToTime, Pid: pid,
					Tid: a.ToThread + 1, Cat: a.Kind, ID: arrowID, BP: "e",
				})
		}
	}
	var buf bytes.Buffer
	buf.WriteString("{\"traceEvents\":[\n")
	for i, e := range evs {
		b, err := json.Marshal(e)
		if err != nil {
			return nil, err
		}
		buf.WriteByte(' ')
		buf.Write(b)
		if i != len(evs)-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	buf.WriteString("]}\n")
	return buf.Bytes(), nil
}

// Validate checks that data is well-formed Chrome trace-event JSON of the
// shape EncodeChrome emits: a traceEvents array whose members carry a
// known phase, non-negative timestamps, positive pids, and whose flow
// events pair up (every "s" has an "f" with the same id and vice versa).
// Golden tests and the CI smoke job share this check.
func Validate(data []byte) error {
	var tr struct {
		TraceEvents []struct {
			Name *string `json:"name"`
			Ph   string  `json:"ph"`
			Ts   int64   `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			ID   int     `json:"id"`
			BP   string  `json:"bp"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("timeline: invalid JSON: %w", err)
	}
	if tr.TraceEvents == nil {
		return fmt.Errorf("timeline: missing traceEvents array")
	}
	flows := map[int][2]int{} // id -> {starts, finishes}
	for i, e := range tr.TraceEvents {
		if e.Name == nil || *e.Name == "" {
			return fmt.Errorf("timeline: event %d has no name", i)
		}
		switch e.Ph {
		case "X", "M", "s", "f":
		default:
			return fmt.Errorf("timeline: event %d has unknown phase %q", i, e.Ph)
		}
		if e.Ts < 0 {
			return fmt.Errorf("timeline: event %d has negative timestamp %d", i, e.Ts)
		}
		if e.Pid <= 0 {
			return fmt.Errorf("timeline: event %d has non-positive pid %d", i, e.Pid)
		}
		switch e.Ph {
		case "s":
			c := flows[e.ID]
			c[0]++
			flows[e.ID] = c
		case "f":
			if e.BP != "e" {
				return fmt.Errorf("timeline: flow finish %d lacks bp:\"e\"", i)
			}
			c := flows[e.ID]
			c[1]++
			flows[e.ID] = c
		}
	}
	for id, c := range flows {
		if c[0] != c[1] {
			return fmt.Errorf("timeline: flow id %d has %d starts but %d finishes", id, c[0], c[1])
		}
	}
	return nil
}
