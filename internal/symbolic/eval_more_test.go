package symbolic

import (
	"strings"
	"testing"
)

func TestKindAndIsBoolAllNodes(t *testing.T) {
	sym := NewSym(1, "r")
	nodes := []struct {
		e      Expr
		kind   Kind
		isBool bool
	}{
		{Int(1), KindIntConst, false},
		{Bool(true), KindBoolConst, true},
		{sym, KindSym, false},
		{&Unary{Op: OpNeg, X: sym}, KindUnary, false},
		{&Unary{Op: OpNot, X: Bool(true)}, KindUnary, true},
		{&Binary{Op: OpAdd, X: sym, Y: sym}, KindBinary, false},
		{&Binary{Op: OpLt, X: sym, Y: sym}, KindBinary, true},
		{&ITE{Cond: Bool(true), Then: Int(1), Else: Int(2)}, KindITE, false},
		{&ITE{Cond: Bool(true), Then: Bool(true), Else: Bool(false)}, KindITE, true},
		{&Select{Entries: nil, Index: sym, Default: Int(0)}, KindSelect, false},
		{&Select{Entries: nil, Index: sym, Default: Bool(false)}, KindSelect, true},
	}
	for i, n := range nodes {
		if n.e.Kind() != n.kind {
			t.Errorf("node %d: kind = %v, want %v", i, n.e.Kind(), n.kind)
		}
		if n.e.IsBool() != n.isBool {
			t.Errorf("node %d: isBool = %v, want %v", i, n.e.IsBool(), n.isBool)
		}
		if n.e.String() == "" {
			t.Errorf("node %d: empty string rendering", i)
		}
	}
}

func TestEvalErrorMessage(t *testing.T) {
	_, err := EvalInt(NewSym(9, "lost"), MapEnv{})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "lost") {
		t.Errorf("error %q does not mention the symbol", err)
	}
}

func TestEvalTypeErrors(t *testing.T) {
	sym := NewSym(1, "r")
	env := MapEnv{1: 5}
	cases := []Expr{
		&Unary{Op: OpNeg, X: Bool(true)},            // negate bool
		&Unary{Op: OpNot, X: Int(1)},                // not int
		&Binary{Op: OpAdd, X: Bool(true), Y: sym},   // add bool
		&Binary{Op: OpLAnd, X: Int(1), Y: Int(2)},   // and ints
		&Binary{Op: OpLAnd, X: Bool(true), Y: sym},  // and bool+int
		&Binary{Op: OpLOr, X: Bool(false), Y: sym},  // or bool+int
		&Binary{Op: OpRem, X: sym, Y: Int(0)},       // rem zero
		&ITE{Cond: Int(1), Then: Int(1), Else: sym}, // int condition
	}
	for i, e := range cases {
		if _, err := eval(e, env); err == nil {
			t.Errorf("case %d (%s): expected evaluation error", i, e)
		}
	}
	// Bool equality works.
	eq := &Binary{Op: OpEq, X: Bool(true), Y: Bool(true)}
	v, err := EvalBool(eq, env)
	if err != nil || !v {
		t.Errorf("bool equality: %v %v", v, err)
	}
	ne := &Binary{Op: OpNe, X: Bool(true), Y: Bool(false)}
	v, err = EvalBool(ne, env)
	if err != nil || !v {
		t.Errorf("bool inequality: %v %v", v, err)
	}
	// EvalInt on a bool expression and EvalBool on an int expression.
	if _, err := EvalInt(Bool(true), env); err == nil {
		t.Error("EvalInt of bool must fail")
	}
	if _, err := EvalBool(Int(1), env); err == nil {
		t.Error("EvalBool of int must fail")
	}
}

func TestSubstituteAllNodeKinds(t *testing.T) {
	sym := NewSym(1, "r")
	env := MapEnv{1: 7}
	// ITE substitution.
	ite := &ITE{Cond: &Binary{Op: OpGt, X: sym, Y: Int(0)}, Then: sym, Else: Int(0)}
	got := Substitute(ite, env)
	if !Equal(got, Int(7)) {
		t.Errorf("ite substitution = %s, want 7", got)
	}
	// Select substitution resolves fully bound selects.
	sel := &Select{
		Entries: []SelectEntry{{Index: sym, Value: Int(10)}},
		Index:   Int(7),
		Default: Int(0),
	}
	got = Substitute(sel, env)
	if !Equal(got, Int(10)) {
		t.Errorf("select substitution = %s, want 10", got)
	}
	// Constants substitute to themselves.
	if !Equal(Substitute(Int(3), env), Int(3)) || !Equal(Substitute(Bool(true), env), Bool(true)) {
		t.Error("constant substitution broken")
	}
	// Unary substitution.
	if !Equal(Substitute(&Unary{Op: OpNeg, X: sym}, env), Int(-7)) {
		t.Error("unary substitution broken")
	}
}

func TestSelectEvalErrorPaths(t *testing.T) {
	sym := NewSym(1, "j")
	sel := &Select{
		Entries: []SelectEntry{{Index: sym, Value: Int(1)}},
		Index:   Int(0),
		Default: Int(9),
	}
	// Unbound entry index.
	if _, err := EvalInt(sel, MapEnv{}); err == nil {
		t.Error("unbound select entry index must error")
	}
	// Unbound select index.
	sel2 := &Select{Entries: nil, Index: sym, Default: Int(9)}
	if _, err := EvalInt(sel2, MapEnv{}); err == nil {
		t.Error("unbound select index must error")
	}
}

func TestNewSelectSymbolicEntriesKept(t *testing.T) {
	sym := NewSym(1, "j")
	entries := []SelectEntry{{Index: sym, Value: Int(5)}}
	e := NewSelect(entries, Int(3), Int(0))
	if _, ok := e.(*Select); !ok {
		t.Fatalf("symbolic-entry select must stay unresolved, got %s", e)
	}
	// Mutating the caller's slice must not affect the select.
	entries[0].Value = Int(99)
	v, err := EvalInt(e, MapEnv{1: 3})
	if err != nil || v != 5 {
		t.Fatalf("select not defensive-copied: %d %v", v, err)
	}
}

func TestSymsNilDst(t *testing.T) {
	if got := Syms(Int(1), nil, nil); len(got) != 0 {
		t.Errorf("constant has syms %v", got)
	}
	ite := &ITE{Cond: &Binary{Op: OpGt, X: NewSym(2, "a"), Y: Int(0)}, Then: NewSym(3, "b"), Else: NewSym(2, "a")}
	if got := Syms(ite, nil, nil); len(got) != 2 {
		t.Errorf("ite syms = %v, want 2 distinct", got)
	}
}
