package symbolic

import "testing"

// TestRecordingEnvTracksPreciseSupport: the recorded set holds exactly the
// symbols evaluation consulted — short-circuited operands stay out.
func TestRecordingEnvTracksPreciseSupport(t *testing.T) {
	a, b := NewSym(0, "a"), NewSym(1, "b")
	// (a == 0) && (b == 1): with a=1 the right operand short-circuits.
	e := NewBinary(OpLAnd,
		NewBinary(OpEq, a, Int(0)),
		NewBinary(OpEq, b, Int(1)))

	rec := &RecordingEnv{Base: MapEnv{0: 1, 1: 1}}
	v, err := EvalBool(e, rec)
	if err != nil || v {
		t.Fatalf("eval = %v, %v; want false, nil", v, err)
	}
	if !rec.Used[0] || rec.Used[1] {
		t.Fatalf("used = %v; want {0} only (b short-circuited)", rec.Used)
	}

	// With a=0 both operands evaluate and both symbols are consulted.
	rec = &RecordingEnv{Base: MapEnv{0: 0, 1: 1}}
	if v, err := EvalBool(e, rec); err != nil || !v {
		t.Fatalf("eval = %v, %v; want true, nil", v, err)
	}
	if !rec.Used[0] || !rec.Used[1] {
		t.Fatalf("used = %v; want {0, 1}", rec.Used)
	}
}

// TestRecordingEnvRecordsUnboundLookups: a failed lookup is still a
// consultation — the caller learns which symbol was missing.
func TestRecordingEnvRecordsUnboundLookups(t *testing.T) {
	a := NewSym(7, "a")
	rec := &RecordingEnv{Base: MapEnv{}}
	if _, err := EvalInt(a, rec); err == nil {
		t.Fatal("expected unbound-symbol error")
	}
	if !rec.Used[7] {
		t.Fatalf("used = %v; want {7}", rec.Used)
	}
}
