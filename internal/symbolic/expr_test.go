package symbolic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	cases := []struct {
		name string
		got  Expr
		want Expr
	}{
		{"add", NewBinary(OpAdd, Int(2), Int(3)), Int(5)},
		{"sub", NewBinary(OpSub, Int(2), Int(3)), Int(-1)},
		{"mul", NewBinary(OpMul, Int(4), Int(3)), Int(12)},
		{"div", NewBinary(OpDiv, Int(7), Int(2)), Int(3)},
		{"rem", NewBinary(OpRem, Int(7), Int(2)), Int(1)},
		{"and", NewBinary(OpAnd, Int(6), Int(3)), Int(2)},
		{"or", NewBinary(OpOr, Int(6), Int(3)), Int(7)},
		{"xor", NewBinary(OpXor, Int(6), Int(3)), Int(5)},
		{"shl", NewBinary(OpShl, Int(1), Int(4)), Int(16)},
		{"shr", NewBinary(OpShr, Int(16), Int(4)), Int(1)},
		{"eq", NewBinary(OpEq, Int(3), Int(3)), Bool(true)},
		{"ne", NewBinary(OpNe, Int(3), Int(3)), Bool(false)},
		{"lt", NewBinary(OpLt, Int(2), Int(3)), Bool(true)},
		{"le", NewBinary(OpLe, Int(3), Int(3)), Bool(true)},
		{"gt", NewBinary(OpGt, Int(2), Int(3)), Bool(false)},
		{"ge", NewBinary(OpGe, Int(2), Int(3)), Bool(false)},
		{"neg", NewUnary(OpNeg, Int(5)), Int(-5)},
		{"not", NewUnary(OpNot, Bool(true)), Bool(false)},
		{"land", NewBinary(OpLAnd, Bool(true), Bool(false)), Bool(false)},
		{"lor", NewBinary(OpLOr, Bool(true), Bool(false)), Bool(true)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if !Equal(c.got, c.want) {
				t.Errorf("got %s, want %s", c.got, c.want)
			}
		})
	}
}

func TestIdentities(t *testing.T) {
	s := NewSym(1, "r")
	if !Equal(NewBinary(OpAdd, Int(0), s), s) {
		t.Error("0 + r should fold to r")
	}
	if !Equal(NewBinary(OpAdd, s, Int(0)), s) {
		t.Error("r + 0 should fold to r")
	}
	if !Equal(NewBinary(OpMul, Int(1), s), s) {
		t.Error("1 * r should fold to r")
	}
	if !Equal(NewBinary(OpMul, s, Int(0)), Int(0)) {
		t.Error("r * 0 should fold to 0")
	}
	if !Equal(NewBinary(OpSub, s, Int(0)), s) {
		t.Error("r - 0 should fold to r")
	}
	p := NewBinary(OpGt, s, Int(0))
	if !Equal(NewBinary(OpLAnd, True, p), p) {
		t.Error("true && p should fold to p")
	}
	if !Equal(NewBinary(OpLAnd, False, p), False) {
		t.Error("false && p should fold to false")
	}
	if !Equal(NewBinary(OpLOr, False, p), p) {
		t.Error("false || p should fold to p")
	}
	if !Equal(NewBinary(OpLOr, True, p), True) {
		t.Error("true || p should fold to true")
	}
	if !Equal(Not(Not(p)), p) {
		t.Error("double negation should fold")
	}
}

func TestDivByZeroNotFolded(t *testing.T) {
	e := NewBinary(OpDiv, Int(1), Int(0))
	if _, ok := e.(*Binary); !ok {
		t.Fatalf("1/0 must stay unfolded, got %s", e)
	}
	if _, err := EvalInt(e, MapEnv{}); err == nil {
		t.Fatal("evaluating 1/0 must error")
	}
}

func TestEvalWithEnv(t *testing.T) {
	r1 := NewSym(1, "Rx")
	r2 := NewSym(2, "Ry")
	// (Rx + 2) * Ry > 10
	e := NewBinary(OpGt, NewBinary(OpMul, NewBinary(OpAdd, r1, Int(2)), r2), Int(10))
	got, err := EvalBool(e, MapEnv{1: 3, 2: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("(3+2)*3 > 10 should be true")
	}
	got, err = EvalBool(e, MapEnv{1: 0, 2: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("(0+2)*3 > 10 should be false")
	}
}

func TestEvalUnboundSymbol(t *testing.T) {
	e := NewBinary(OpAdd, NewSym(7, "r"), Int(1))
	if _, err := EvalInt(e, MapEnv{}); err == nil {
		t.Fatal("expected unbound-symbol error")
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// (false && <type error>) must evaluate to false without touching the RHS.
	bad := NewBinary(OpLAnd, Int(1), Int(2)) // ill-typed on purpose
	e := &Binary{Op: OpLAnd, X: False, Y: bad}
	got, err := EvalBool(e, MapEnv{})
	if err != nil {
		t.Fatalf("short-circuit and: %v", err)
	}
	if got {
		t.Error("false && _ must be false")
	}
	e2 := &Binary{Op: OpLOr, X: True, Y: bad}
	got, err = EvalBool(e2, MapEnv{})
	if err != nil {
		t.Fatalf("short-circuit or: %v", err)
	}
	if !got {
		t.Error("true || _ must be true")
	}
}

func TestITE(t *testing.T) {
	s := NewSym(1, "r")
	e := NewITE(NewBinary(OpGt, s, Int(0)), Int(100), Int(200))
	v, err := EvalInt(e, MapEnv{1: 5})
	if err != nil || v != 100 {
		t.Fatalf("got %d, %v; want 100", v, err)
	}
	v, err = EvalInt(e, MapEnv{1: -5})
	if err != nil || v != 200 {
		t.Fatalf("got %d, %v; want 200", v, err)
	}
	// Constant condition folds.
	if !Equal(NewITE(True, Int(1), Int(2)), Int(1)) {
		t.Error("ite(true,..) should fold")
	}
	// Identical branches fold.
	if !Equal(NewITE(NewBinary(OpGt, s, Int(0)), Int(1), Int(1)), Int(1)) {
		t.Error("ite with equal branches should fold")
	}
}

func TestSelectConcreteResolution(t *testing.T) {
	entries := []SelectEntry{
		{Index: Int(1), Value: Int(10)},
		{Index: Int(2), Value: Int(20)},
		{Index: Int(1), Value: Int(11)}, // shadows the first write to index 1
	}
	if got := NewSelect(entries, Int(1), Int(0)); !Equal(got, Int(11)) {
		t.Errorf("select[1] = %s, want 11 (latest write wins)", got)
	}
	if got := NewSelect(entries, Int(2), Int(0)); !Equal(got, Int(20)) {
		t.Errorf("select[2] = %s, want 20", got)
	}
	if got := NewSelect(entries, Int(9), Int(0)); !Equal(got, Int(0)) {
		t.Errorf("select[9] = %s, want default 0", got)
	}
}

func TestSelectSymbolicResolution(t *testing.T) {
	j := NewSym(1, "j")
	entries := []SelectEntry{
		{Index: Int(1), Value: Int(10)},
		{Index: j, Value: Int(99)},
	}
	sel := NewSelect(entries, Int(1), Int(0))
	// With j = 1 the later symbolic write shadows; with j = 2 it does not.
	v, err := EvalInt(sel, MapEnv{1: 1})
	if err != nil || v != 99 {
		t.Fatalf("j=1: got %d, %v; want 99", v, err)
	}
	v, err = EvalInt(sel, MapEnv{1: 2})
	if err != nil || v != 10 {
		t.Fatalf("j=2: got %d, %v; want 10", v, err)
	}
}

func TestSubstitute(t *testing.T) {
	r1 := NewSym(1, "a")
	r2 := NewSym(2, "b")
	e := NewBinary(OpAdd, r1, r2)
	half := Substitute(e, MapEnv{1: 4})
	if got := Syms(half, nil, nil); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after partial substitution, syms = %v; want [2]", got)
	}
	full := Substitute(half, MapEnv{2: 5})
	if !Equal(full, Int(9)) {
		t.Fatalf("full substitution = %s; want 9", full)
	}
}

func TestSymsOrderAndUniqueness(t *testing.T) {
	a, b, c := NewSym(3, "a"), NewSym(1, "b"), NewSym(2, "c")
	e := NewBinary(OpAdd, NewBinary(OpMul, a, b), NewBinary(OpSub, b, c))
	got := Syms(e, nil, nil)
	want := []SymID{3, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("syms = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("syms = %v, want %v", got, want)
		}
	}
}

func TestNamer(t *testing.T) {
	var n Namer
	a := n.Fresh("a")
	b := n.Fresh("b")
	if a.ID == b.ID {
		t.Fatal("Namer must hand out distinct ids")
	}
	if n.Count() != 2 {
		t.Fatalf("count = %d, want 2", n.Count())
	}
}

// randExpr builds a random well-typed integer expression over the given
// symbol ids with bounded depth.
func randExpr(r *rand.Rand, ids []SymID, depth int) Expr {
	if depth == 0 || r.Intn(3) == 0 {
		if len(ids) > 0 && r.Intn(2) == 0 {
			return NewSym(ids[r.Intn(len(ids))], "s")
		}
		return Int(int64(r.Intn(21) - 10))
	}
	ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor}
	op := ops[r.Intn(len(ops))]
	return &Binary{Op: op, X: randExpr(r, ids, depth-1), Y: randExpr(r, ids, depth-1)}
}

// TestPropertyFoldedEqualsUnfolded checks that the folding constructors
// never change the value of an expression: rebuilding a raw tree through
// NewBinary/NewUnary evaluates to the same result.
func TestPropertyFoldedEqualsUnfolded(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	rebuild := func(e Expr) Expr {
		switch x := e.(type) {
		case *Binary:
			return NewBinary(x.Op, rebuildExpr(x.X), rebuildExpr(x.Y))
		}
		return e
	}
	_ = rebuild
	f := func(seed int64, v1, v2, v3 int64) bool {
		rr := rand.New(rand.NewSource(seed))
		ids := []SymID{1, 2, 3}
		env := MapEnv{1: v1 % 100, 2: v2 % 100, 3: v3 % 100}
		raw := randExpr(rr, ids, 4)
		folded := rebuildExpr(raw)
		a, errA := EvalInt(raw, env)
		b, errB := EvalInt(folded, env)
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Error(err)
	}
}

// rebuildExpr reconstructs an expression through the folding constructors.
func rebuildExpr(e Expr) Expr {
	switch x := e.(type) {
	case *Unary:
		return NewUnary(x.Op, rebuildExpr(x.X))
	case *Binary:
		return NewBinary(x.Op, rebuildExpr(x.X), rebuildExpr(x.Y))
	case *ITE:
		return NewITE(rebuildExpr(x.Cond), rebuildExpr(x.Then), rebuildExpr(x.Else))
	default:
		return e
	}
}

// TestPropertySubstituteMatchesEval checks that substituting a full
// environment yields the constant Eval would produce.
func TestPropertySubstituteMatchesEval(t *testing.T) {
	f := func(seed int64, v1, v2 int64) bool {
		rr := rand.New(rand.NewSource(seed))
		env := MapEnv{1: v1 % 1000, 2: v2 % 1000}
		e := randExpr(rr, []SymID{1, 2}, 4)
		want, err := EvalInt(e, env)
		if err != nil {
			return true // trap cases are fine
		}
		sub := Substitute(e, env)
		c, ok := sub.(*IntConst)
		return ok && c.V == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEqualStructural(t *testing.T) {
	a := NewBinary(OpAdd, NewSym(1, "x"), Int(2))
	b := NewBinary(OpAdd, NewSym(1, "y"), Int(2)) // name differs, id same
	if !Equal(a, b) {
		t.Error("equality must ignore symbol names")
	}
	c := NewBinary(OpAdd, NewSym(2, "x"), Int(2))
	if Equal(a, c) {
		t.Error("different symbol ids must not compare equal")
	}
	if Equal(a, nil) || Equal(nil, a) {
		t.Error("nil never equals a node")
	}
}

func TestSize(t *testing.T) {
	e := NewBinary(OpGt, &Binary{Op: OpAdd, X: NewSym(1, "r"), Y: Int(2)}, Int(10))
	if got := Size(e); got != 5 {
		t.Errorf("size = %d, want 5", got)
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "+" || OpLAnd.String() != "&&" {
		t.Error("operator spellings wrong")
	}
	if !OpEq.IsComparison() || OpAdd.IsComparison() {
		t.Error("IsComparison misclassifies")
	}
	if !OpNot.IsLogical() || OpEq.IsLogical() {
		t.Error("IsLogical misclassifies")
	}
}

func TestStringRendering(t *testing.T) {
	e := NewBinary(OpLt, NewSym(1, "Rx"), Int(3))
	if got := e.String(); got != "(Rx < 3)" {
		t.Errorf("String() = %q", got)
	}
	sel := &Select{
		Entries: []SelectEntry{{Index: Int(0), Value: Int(1)}},
		Index:   NewSym(2, "j"),
		Default: Int(0),
	}
	if got := sel.String(); got == "" {
		t.Error("select must render")
	}
}
