// Package symbolic implements the symbolic expression language used by
// CLAP's offline analysis.
//
// During path-directed symbolic execution (internal/symexec) every load from
// a shared memory location returns a fresh symbolic variable — a Sym — and
// all values derived from such loads become expression trees over those
// symbols. Path conditions (Fpath), the bug predicate (Fbug) and the values
// written by shared stores are all Exprs. The constraint solver later binds
// every Sym to the concrete value produced by the store the corresponding
// read is mapped to, and evaluates the expressions concretely.
//
// Expressions are immutable once built; it is safe to share subtrees between
// threads and between constraint systems.
package symbolic

import (
	"fmt"
	"strings"
)

// Kind identifies the dynamic type of an expression node.
type Kind uint8

// Expression node kinds.
const (
	KindIntConst Kind = iota
	KindBoolConst
	KindSym
	KindUnary
	KindBinary
	KindITE
	KindSelect
)

// Op enumerates the unary and binary operators of the expression language.
// The set mirrors the operator set of the mini language (internal/minic) so
// that symbolic execution can translate IR operations one to one.
type Op uint8

// Operators. Arithmetic and bitwise operators produce integers; comparison
// and logical operators produce booleans.
const (
	OpInvalid Op = iota

	// Integer → integer.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg // unary minus

	// Integer × integer → bool.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Bool → bool.
	OpLAnd
	OpLOr
	OpNot
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpRem: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpNeg: "-", OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpLAnd: "&&", OpLOr: "||", OpNot: "!",
}

// String returns the source-level spelling of the operator.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsComparison reports whether the operator compares two integers into a bool.
func (o Op) IsComparison() bool {
	switch o {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// IsLogical reports whether the operator works on booleans.
func (o Op) IsLogical() bool {
	switch o {
	case OpLAnd, OpLOr, OpNot:
		return true
	}
	return false
}

// SymID names a symbolic variable. Fresh IDs are handed out by a Namer; each
// shared read in the analyzed execution gets its own SymID, so a SymID also
// identifies the read-SAP whose value the symbol stands for.
type SymID int32

// Expr is a node in a symbolic expression tree. Implementations are
// IntConst, BoolConst, Sym, Unary, Binary, ITE and Select.
type Expr interface {
	// Kind reports the node's dynamic kind.
	Kind() Kind
	// IsBool reports whether the expression evaluates to a boolean.
	IsBool() bool
	// String renders the expression in mini-language syntax.
	String() string
}

// IntConst is a constant 64-bit integer.
type IntConst struct{ V int64 }

// BoolConst is a constant boolean.
type BoolConst struct{ V bool }

// Sym is a symbolic variable standing for the unknown value returned by a
// shared read. Name is a diagnostic label such as "R_x@t1#3".
type Sym struct {
	ID   SymID
	Name string
}

// Unary applies a unary operator (OpNeg, OpNot) to X.
type Unary struct {
	Op Op
	X  Expr
}

// Binary applies a binary operator to X and Y.
type Binary struct {
	Op   Op
	X, Y Expr
}

// ITE is if-then-else: it evaluates to Then when Cond is true, otherwise
// to Else. Then and Else must agree on boolean-ness.
type ITE struct {
	Cond, Then, Else Expr
}

// Select models a read from a write history with a possibly symbolic index:
// it evaluates to the value of the latest entry whose index equals Index,
// or to Default when no entry matches. It implements the paper's delayed
// symbolic-address resolution (§5 "Symbolic Address Resolution"): the entry
// list is the ordered list of writes to a base object.
type Select struct {
	// Entries are in program order, oldest first.
	Entries []SelectEntry
	// Index is the (possibly symbolic) index being read.
	Index Expr
	// Default is the value read when no entry's index matches.
	Default Expr
}

// SelectEntry is one remembered write to a symbolic location.
type SelectEntry struct {
	Index Expr // the (possibly symbolic) index written
	Value Expr // the (possibly symbolic) value written
}

// Kind implementations.

// Kind reports KindIntConst.
func (*IntConst) Kind() Kind { return KindIntConst }

// Kind reports KindBoolConst.
func (*BoolConst) Kind() Kind { return KindBoolConst }

// Kind reports KindSym.
func (*Sym) Kind() Kind { return KindSym }

// Kind reports KindUnary.
func (*Unary) Kind() Kind { return KindUnary }

// Kind reports KindBinary.
func (*Binary) Kind() Kind { return KindBinary }

// Kind reports KindITE.
func (*ITE) Kind() Kind { return KindITE }

// Kind reports KindSelect.
func (*Select) Kind() Kind { return KindSelect }

// IsBool implementations.

// IsBool reports false: integer constant.
func (*IntConst) IsBool() bool { return false }

// IsBool reports true: boolean constant.
func (*BoolConst) IsBool() bool { return true }

// IsBool reports false: read symbols always stand for integer values.
func (*Sym) IsBool() bool { return false }

// IsBool reports whether the operator produces a boolean.
func (u *Unary) IsBool() bool { return u.Op == OpNot }

// IsBool reports whether the operator produces a boolean.
func (b *Binary) IsBool() bool { return b.Op.IsComparison() || b.Op.IsLogical() }

// IsBool reports the boolean-ness of the branches.
func (i *ITE) IsBool() bool { return i.Then.IsBool() }

// IsBool reports the boolean-ness of the default value.
func (s *Select) IsBool() bool { return s.Default.IsBool() }

// String implementations.

// String renders the constant.
func (c *IntConst) String() string { return fmt.Sprintf("%d", c.V) }

// String renders the constant.
func (c *BoolConst) String() string {
	if c.V {
		return "true"
	}
	return "false"
}

// String renders the symbol's diagnostic name.
func (s *Sym) String() string {
	if s.Name != "" {
		return s.Name
	}
	return fmt.Sprintf("sym%d", s.ID)
}

// String renders the application in prefix-free infix form.
func (u *Unary) String() string { return fmt.Sprintf("%s(%s)", u.Op, u.X) }

// String renders the application in parenthesized infix form.
func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.X, b.Op, b.Y)
}

// String renders the conditional.
func (i *ITE) String() string {
	return fmt.Sprintf("ite(%s, %s, %s)", i.Cond, i.Then, i.Else)
}

// String renders the write-history read.
func (s *Select) String() string {
	var sb strings.Builder
	sb.WriteString("select(")
	sb.WriteString(s.Index.String())
	sb.WriteString("; ")
	for k, e := range s.Entries {
		if k > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "[%s]=%s", e.Index, e.Value)
	}
	sb.WriteString("; default ")
	sb.WriteString(s.Default.String())
	sb.WriteString(")")
	return sb.String()
}

// Convenience constructors. They fold constants eagerly so that purely
// concrete computation never allocates expression trees deeper than a leaf.

// Int returns an integer constant expression.
func Int(v int64) Expr { return &IntConst{V: v} }

// Bool returns a boolean constant expression.
func Bool(v bool) Expr { return &BoolConst{V: v} }

// True and False are the shared boolean constants.
var (
	True  Expr = &BoolConst{V: true}
	False Expr = &BoolConst{V: false}
)

// NewSym returns a fresh symbolic variable with the given id and label.
func NewSym(id SymID, name string) *Sym { return &Sym{ID: id, Name: name} }

// NewUnary builds op(x), folding constants.
func NewUnary(op Op, x Expr) Expr {
	switch op {
	case OpNeg:
		if c, ok := x.(*IntConst); ok {
			return Int(-c.V)
		}
	case OpNot:
		if c, ok := x.(*BoolConst); ok {
			return Bool(!c.V)
		}
		// ¬¬e ⇒ e
		if u, ok := x.(*Unary); ok && u.Op == OpNot {
			return u.X
		}
	}
	return &Unary{Op: op, X: x}
}

// NewBinary builds (x op y), folding constants and applying a few cheap
// algebraic identities. Division and remainder by constant zero are left
// unfolded; Eval reports the error at evaluation time, matching the VM's
// runtime trap behaviour.
func NewBinary(op Op, x, y Expr) Expr {
	xc, xok := x.(*IntConst)
	yc, yok := y.(*IntConst)
	if xok && yok {
		if v, ok := foldInt(op, xc.V, yc.V); ok {
			return v
		}
	}
	xb, xbok := x.(*BoolConst)
	yb, ybok := y.(*BoolConst)
	switch op {
	case OpLAnd:
		if xbok {
			if !xb.V {
				return False
			}
			return y
		}
		if ybok {
			if !yb.V {
				return False
			}
			return x
		}
	case OpLOr:
		if xbok {
			if xb.V {
				return True
			}
			return y
		}
		if ybok {
			if yb.V {
				return True
			}
			return x
		}
	case OpAdd:
		if xok && xc.V == 0 {
			return y
		}
		if yok && yc.V == 0 {
			return x
		}
	case OpSub:
		if yok && yc.V == 0 {
			return x
		}
	case OpMul:
		if xok && xc.V == 1 {
			return y
		}
		if yok && yc.V == 1 {
			return x
		}
		if (xok && xc.V == 0) || (yok && yc.V == 0) {
			return Int(0)
		}
	}
	return &Binary{Op: op, X: x, Y: y}
}

// foldInt folds a binary operator over two integer constants. It reports
// ok=false when the operation traps (division by zero) or when the operator
// does not apply to integers.
func foldInt(op Op, a, b int64) (Expr, bool) {
	switch op {
	case OpAdd:
		return Int(a + b), true
	case OpSub:
		return Int(a - b), true
	case OpMul:
		return Int(a * b), true
	case OpDiv:
		if b == 0 {
			return nil, false
		}
		return Int(a / b), true
	case OpRem:
		if b == 0 {
			return nil, false
		}
		return Int(a % b), true
	case OpAnd:
		return Int(a & b), true
	case OpOr:
		return Int(a | b), true
	case OpXor:
		return Int(a ^ b), true
	case OpShl:
		return Int(a << uint64(b&63)), true
	case OpShr:
		return Int(a >> uint64(b&63)), true
	case OpEq:
		return Bool(a == b), true
	case OpNe:
		return Bool(a != b), true
	case OpLt:
		return Bool(a < b), true
	case OpLe:
		return Bool(a <= b), true
	case OpGt:
		return Bool(a > b), true
	case OpGe:
		return Bool(a >= b), true
	}
	return nil, false
}

// NewITE builds ite(cond, then, else), folding a constant condition and
// collapsing identical branches.
func NewITE(cond, then, els Expr) Expr {
	if c, ok := cond.(*BoolConst); ok {
		if c.V {
			return then
		}
		return els
	}
	if Equal(then, els) {
		return then
	}
	return &ITE{Cond: cond, Then: then, Else: els}
}

// NewSelect builds a write-history read. When the index and all entry
// indices are concrete the select resolves immediately.
func NewSelect(entries []SelectEntry, index, def Expr) Expr {
	if ic, ok := index.(*IntConst); ok {
		allConcrete := true
		for _, e := range entries {
			if _, ok := e.Index.(*IntConst); !ok {
				allConcrete = false
				break
			}
		}
		if allConcrete {
			res := def
			for _, e := range entries {
				if e.Index.(*IntConst).V == ic.V {
					res = e.Value
				}
			}
			return res
		}
	}
	es := make([]SelectEntry, len(entries))
	copy(es, entries)
	return &Select{Entries: es, Index: index, Default: def}
}

// Not negates a boolean expression.
func Not(x Expr) Expr { return NewUnary(OpNot, x) }

// And conjoins boolean expressions, skipping constants.
func And(xs ...Expr) Expr {
	res := True
	for _, x := range xs {
		res = NewBinary(OpLAnd, res, x)
	}
	return res
}

// Or disjoins boolean expressions, skipping constants.
func Or(xs ...Expr) Expr {
	res := False
	for _, x := range xs {
		res = NewBinary(OpLOr, res, x)
	}
	return res
}

// Eq builds x == y.
func Eq(x, y Expr) Expr { return NewBinary(OpEq, x, y) }

// Equal reports structural equality of two expressions.
func Equal(a, b Expr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind() != b.Kind() {
		return false
	}
	switch x := a.(type) {
	case *IntConst:
		return x.V == b.(*IntConst).V
	case *BoolConst:
		return x.V == b.(*BoolConst).V
	case *Sym:
		return x.ID == b.(*Sym).ID
	case *Unary:
		y := b.(*Unary)
		return x.Op == y.Op && Equal(x.X, y.X)
	case *Binary:
		y := b.(*Binary)
		return x.Op == y.Op && Equal(x.X, y.X) && Equal(x.Y, y.Y)
	case *ITE:
		y := b.(*ITE)
		return Equal(x.Cond, y.Cond) && Equal(x.Then, y.Then) && Equal(x.Else, y.Else)
	case *Select:
		y := b.(*Select)
		if len(x.Entries) != len(y.Entries) || !Equal(x.Index, y.Index) || !Equal(x.Default, y.Default) {
			return false
		}
		for i := range x.Entries {
			if !Equal(x.Entries[i].Index, y.Entries[i].Index) || !Equal(x.Entries[i].Value, y.Entries[i].Value) {
				return false
			}
		}
		return true
	}
	return false
}

// Syms appends to dst the distinct SymIDs appearing in e, in first-seen
// order, and returns the extended slice. seen tracks already-reported IDs
// and may be nil on the first call.
func Syms(e Expr, seen map[SymID]bool, dst []SymID) []SymID {
	if seen == nil {
		seen = make(map[SymID]bool)
	}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Sym:
			if !seen[x.ID] {
				seen[x.ID] = true
				dst = append(dst, x.ID)
			}
		case *Unary:
			walk(x.X)
		case *Binary:
			walk(x.X)
			walk(x.Y)
		case *ITE:
			walk(x.Cond)
			walk(x.Then)
			walk(x.Else)
		case *Select:
			walk(x.Index)
			walk(x.Default)
			for _, en := range x.Entries {
				walk(en.Index)
				walk(en.Value)
			}
		}
	}
	walk(e)
	return dst
}

// Size returns the number of nodes in the expression tree. It is used by
// constraint statistics (Table 1's #Constraints column counts clause nodes).
func Size(e Expr) int {
	switch x := e.(type) {
	case *IntConst, *BoolConst, *Sym:
		return 1
	case *Unary:
		return 1 + Size(x.X)
	case *Binary:
		return 1 + Size(x.X) + Size(x.Y)
	case *ITE:
		return 1 + Size(x.Cond) + Size(x.Then) + Size(x.Else)
	case *Select:
		n := 1 + Size(x.Index) + Size(x.Default)
		for _, en := range x.Entries {
			n += Size(en.Index) + Size(en.Value)
		}
		return n
	}
	return 1
}
