package symbolic

import "fmt"

// Env supplies concrete values for symbolic variables during evaluation.
// The solver builds an Env incrementally as it maps reads to writes.
type Env interface {
	// Value returns the concrete value bound to the symbol, or ok=false when
	// the symbol is unbound.
	Value(id SymID) (int64, bool)
}

// MapEnv is the map-backed Env used by the solver and by tests.
type MapEnv map[SymID]int64

// Value implements Env.
func (m MapEnv) Value(id SymID) (int64, bool) {
	v, ok := m[id]
	return v, ok
}

// RecordingEnv wraps an Env and records every symbol the evaluation
// actually consulted. Because evaluation short-circuits (logical
// operators, ITE, Select), the recorded set is the precise support of the
// produced value — typically smaller than the syntactic Syms of the
// expression. The CNF backend uses it to evaluate symbolic address
// expressions under a model and then build conflict premises no larger
// than the valuation that produced the address.
type RecordingEnv struct {
	Base Env
	// Used collects the consulted symbol IDs; allocated on first use.
	Used map[SymID]bool
}

// Value implements Env, recording the consulted symbol.
func (r *RecordingEnv) Value(id SymID) (int64, bool) {
	if r.Used == nil {
		r.Used = map[SymID]bool{}
	}
	r.Used[id] = true
	return r.Base.Value(id)
}

// EvalError reports a failed evaluation: an unbound symbol, a type mismatch
// or an arithmetic trap.
type EvalError struct {
	Expr Expr
	Msg  string
}

// Error implements error.
func (e *EvalError) Error() string {
	return fmt.Sprintf("symbolic: cannot evaluate %s: %s", e.Expr, e.Msg)
}

// Value is the result of a concrete evaluation: either an integer or a bool.
type Value struct {
	Bool   bool
	B      bool // boolean payload, valid when Bool
	I      int64
	IsBool bool
}

// EvalInt evaluates e to a concrete integer under env.
func EvalInt(e Expr, env Env) (int64, error) {
	v, err := eval(e, env)
	if err != nil {
		return 0, err
	}
	if v.IsBool {
		return 0, &EvalError{Expr: e, Msg: "expected integer, got boolean"}
	}
	return v.I, nil
}

// EvalBool evaluates e to a concrete boolean under env.
func EvalBool(e Expr, env Env) (bool, error) {
	v, err := eval(e, env)
	if err != nil {
		return false, err
	}
	if !v.IsBool {
		return false, &EvalError{Expr: e, Msg: "expected boolean, got integer"}
	}
	return v.B, nil
}

func eval(e Expr, env Env) (Value, error) {
	switch x := e.(type) {
	case *IntConst:
		return Value{I: x.V}, nil
	case *BoolConst:
		return Value{IsBool: true, B: x.V}, nil
	case *Sym:
		v, ok := env.Value(x.ID)
		if !ok {
			return Value{}, &EvalError{Expr: e, Msg: fmt.Sprintf("unbound symbol %s", x)}
		}
		return Value{I: v}, nil
	case *Unary:
		v, err := eval(x.X, env)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case OpNeg:
			if v.IsBool {
				return Value{}, &EvalError{Expr: e, Msg: "negating a boolean"}
			}
			return Value{I: -v.I}, nil
		case OpNot:
			if !v.IsBool {
				return Value{}, &EvalError{Expr: e, Msg: "logical not of an integer"}
			}
			return Value{IsBool: true, B: !v.B}, nil
		}
		return Value{}, &EvalError{Expr: e, Msg: "unknown unary operator"}
	case *Binary:
		// Short-circuit logical operators so that guards protect their
		// right operands, mirroring the language semantics.
		if x.Op == OpLAnd || x.Op == OpLOr {
			l, err := eval(x.X, env)
			if err != nil {
				return Value{}, err
			}
			if !l.IsBool {
				return Value{}, &EvalError{Expr: e, Msg: "logical operator on integer"}
			}
			if x.Op == OpLAnd && !l.B {
				return Value{IsBool: true, B: false}, nil
			}
			if x.Op == OpLOr && l.B {
				return Value{IsBool: true, B: true}, nil
			}
			r, err := eval(x.Y, env)
			if err != nil {
				return Value{}, err
			}
			if !r.IsBool {
				return Value{}, &EvalError{Expr: e, Msg: "logical operator on integer"}
			}
			return Value{IsBool: true, B: r.B}, nil
		}
		l, err := eval(x.X, env)
		if err != nil {
			return Value{}, err
		}
		r, err := eval(x.Y, env)
		if err != nil {
			return Value{}, err
		}
		if l.IsBool || r.IsBool {
			// Only equality makes sense on booleans.
			if (x.Op == OpEq || x.Op == OpNe) && l.IsBool && r.IsBool {
				eq := l.B == r.B
				if x.Op == OpNe {
					eq = !eq
				}
				return Value{IsBool: true, B: eq}, nil
			}
			return Value{}, &EvalError{Expr: e, Msg: "integer operator on boolean"}
		}
		if (x.Op == OpDiv || x.Op == OpRem) && r.I == 0 {
			return Value{}, &EvalError{Expr: e, Msg: "division by zero"}
		}
		folded, ok := foldInt(x.Op, l.I, r.I)
		if !ok {
			return Value{}, &EvalError{Expr: e, Msg: "operator does not fold"}
		}
		switch f := folded.(type) {
		case *IntConst:
			return Value{I: f.V}, nil
		case *BoolConst:
			return Value{IsBool: true, B: f.V}, nil
		}
		return Value{}, &EvalError{Expr: e, Msg: "unexpected fold result"}
	case *ITE:
		c, err := EvalBool(x.Cond, env)
		if err != nil {
			return Value{}, err
		}
		if c {
			return eval(x.Then, env)
		}
		return eval(x.Else, env)
	case *Select:
		idx, err := EvalInt(x.Index, env)
		if err != nil {
			return Value{}, err
		}
		// Later entries shadow earlier ones: scan newest-first.
		for k := len(x.Entries) - 1; k >= 0; k-- {
			ei, err := EvalInt(x.Entries[k].Index, env)
			if err != nil {
				return Value{}, err
			}
			if ei == idx {
				return eval(x.Entries[k].Value, env)
			}
		}
		return eval(x.Default, env)
	}
	return Value{}, &EvalError{Expr: e, Msg: "unknown expression kind"}
}

// Substitute returns e with every bound symbol replaced by its concrete
// value from env; unbound symbols are left in place. The result is folded by
// the constructors, so a fully bound expression substitutes to a constant.
func Substitute(e Expr, env Env) Expr {
	switch x := e.(type) {
	case *IntConst, *BoolConst:
		return e
	case *Sym:
		if v, ok := env.Value(x.ID); ok {
			return Int(v)
		}
		return e
	case *Unary:
		return NewUnary(x.Op, Substitute(x.X, env))
	case *Binary:
		return NewBinary(x.Op, Substitute(x.X, env), Substitute(x.Y, env))
	case *ITE:
		return NewITE(Substitute(x.Cond, env), Substitute(x.Then, env), Substitute(x.Else, env))
	case *Select:
		entries := make([]SelectEntry, len(x.Entries))
		for i, en := range x.Entries {
			entries[i] = SelectEntry{Index: Substitute(en.Index, env), Value: Substitute(en.Value, env)}
		}
		return NewSelect(entries, Substitute(x.Index, env), Substitute(x.Default, env))
	}
	return e
}

// Namer hands out fresh symbolic variable IDs. The zero value is ready to
// use. Namer is not safe for concurrent use; symbolic execution of the
// per-thread paths is sequential by construction.
type Namer struct {
	next SymID
}

// Fresh returns a new symbol labeled name.
func (n *Namer) Fresh(name string) *Sym {
	s := NewSym(n.next, name)
	n.next++
	return s
}

// Count returns the number of symbols handed out so far.
func (n *Namer) Count() int { return int(n.next) }
