// Package races is the constraint-based predictive race detector over
// CLAP's symbolic event graph. Given the constraint system of one recorded
// execution (benign or failing), it enumerates conflicting access pairs —
// write/write or write/read on the same location from different threads —
// prunes the pairs the static lockset / happens-before analysis already
// proves safe, and decides each surviving source-site pair by asking
// whether a feasible schedule exists in which the two accesses are
// *adjacent*: no SAP, in particular no synchronization operation, between
// them. Adjacent-in-some-feasible-schedule is the classic predictive race
// criterion — nothing orders the pair, so on real hardware the accesses
// can overlap.
//
// Two engines decide adjacency, cheapest first:
//
//   - recorded-order perturbation: re-validate the recorded interleaving
//     (or a single-move variant of it that drags one access next to the
//     other) with constraints.ValidateSchedule. A success is a confirmed
//     race with a concrete, replay-validated witness schedule.
//   - CNF session fallback: one cnfsolver.Session per recording, re-entered
//     per pair via RetractBlocks → AssumeAdjacent → Solve. Sat confirms
//     (the witness comes out of the theory loop already validated), Unsat
//     refutes — the CNF over-approximates the feasible-schedule space, so
//     an unsatisfiable adjacency query proves the pair can never touch.
//     Budget exhaustion is reported as unknown, never as refuted.
//
// Confirmed races therefore always carry a witness that passes
// ValidateSchedule; refuted verdicts are proofs modulo the recorded paths;
// and the per-reason counters expose how much work each filter saved.
package races

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cnfsolver"
	"repro/internal/constraints"
	"repro/internal/minic"
	"repro/internal/staticanalysis"
	"repro/internal/symexec"
	"repro/internal/trace"
)

// NoTime marks a SAP without a recorded timestamp in the times slice
// handed to Analyze (same convention as explain.AlignRecorded).
const NoTime int64 = -1

// Options tunes the analysis.
type Options struct {
	// MaxPairsPerSite bounds how many SAP pairs are examined per distinct
	// source-site pair (default 4). A site group larger than the budget
	// can still be confirmed, but never refuted.
	MaxPairsPerSite int
	// SolverRounds caps the CNF theory-refinement rounds per adjacency
	// query (default 60). Round budgets keep verdicts deterministic, so
	// there is no per-query wall-clock deadline by default.
	SolverRounds int
	// MaxSolverCalls bounds the total CNF queries per recording (default
	// 64); exhausted groups report unknown.
	MaxSolverCalls int
	// NoPerturb disables the recorded-order perturbation fast path,
	// forcing every surviving pair through the CNF session.
	NoPerturb bool
	// NoSolver disables the CNF fallback (fast path only); groups the
	// fast path cannot confirm report unknown.
	NoSolver bool
	// Ctx cancels the analysis between pairs and inside CNF queries.
	Ctx context.Context
	// Deadline bounds the whole analysis (0 = none); groups past it
	// report unknown.
	Deadline time.Duration
}

func (o *Options) fill() {
	if o.MaxPairsPerSite == 0 {
		o.MaxPairsPerSite = 4
	}
	if o.SolverRounds == 0 {
		o.SolverRounds = 60
	}
	if o.MaxSolverCalls == 0 {
		o.MaxSolverCalls = 64
	}
}

// Status is a site pair's verdict.
type Status uint8

// Verdicts.
const (
	// Confirmed: a feasible schedule runs the accesses with no
	// synchronization between them; the finding carries the validated
	// witness.
	Confirmed Status = iota
	// Refuted: the solver proved every feasible schedule separates every
	// access pair of the site with synchronization — a lockset false
	// positive.
	Refuted
	// Unknown: budgets ran out before a verdict.
	Unknown
	// StaticOnly: the static analysis flags the site pair as a potential
	// race, but the recorded execution contains no conflicting access
	// pair for it (one side never executed, or the concrete indices were
	// disjoint this run), so the predictive pass has nothing to decide.
	StaticOnly
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Confirmed:
		return "confirmed"
	case Refuted:
		return "refuted"
	case StaticOnly:
		return "static"
	}
	return "unknown"
}

// Access identifies one side of a finding: a source site plus the thread
// of the witnessing dynamic access.
type Access struct {
	SAP    constraints.SAPRef
	Thread trace.ThreadID
	Write  bool
	Pos    minic.Pos
}

// Finding is the verdict for one conflicting source-site pair.
type Finding struct {
	// Var is the shared global's name.
	Var string
	// A and B are the two sites, canonically ordered by position. For a
	// confirmed finding they identify the witnessing SAP pair.
	A, B Access
	// Status is the verdict; How names the engine that produced it
	// ("recorded", "perturbed", "solver") or the reason it is unknown.
	Status Status
	How    string
	// Pairs counts the SAP pairs of this site group that survived
	// pruning.
	Pairs int
	// Witness is the validated adjacent schedule (confirmed only). The
	// two racing accesses sit at consecutive positions.
	Witness *constraints.Witness
}

// Counters are the per-reason work counters, mirrored into the obs
// registry by the core glue under the races.* stable names.
type Counters struct {
	// Pairs counts enumerated conflicting SAP pairs.
	Pairs int `json:"pairs"`
	// PrunedStatic counts pairs pruned as statically ordered (happens-
	// before verdicts and hard-edge reachability).
	PrunedStatic int `json:"pruned_static"`
	// PrunedMutex counts pairs pruned by a common must-held mutex.
	PrunedMutex int `json:"pruned_mutex"`
	// Confirmed / Refuted / Unknown / StaticOnly count site verdicts.
	Confirmed  int `json:"confirmed"`
	Refuted    int `json:"refuted"`
	Unknown    int `json:"unknown"`
	StaticOnly int `json:"static_only"`
	// SolverCalls and Sessions count CNF adjacency queries and session
	// constructions; SessionReuse = SolverCalls - Sessions is the number
	// of queries that re-entered an existing session.
	SolverCalls int `json:"solver_calls"`
	Sessions    int `json:"sessions"`
}

// SessionReuse reports how many CNF queries reused an existing session.
func (c Counters) SessionReuse() int {
	if c.SolverCalls == 0 {
		return 0
	}
	return c.SolverCalls - c.Sessions
}

// Report is the full analysis result.
type Report struct {
	// Findings is sorted: confirmed, then refuted, then unknown, each by
	// (variable, positions) — byte-stable for goldens.
	Findings []Finding
	Counters Counters
	// Sys and Times echo the analysis inputs so renderers (schedule
	// diffs, witness listings) can resolve SAPs and recorded order.
	Sys   *constraints.System
	Times []int64
}

// Confirmed returns the confirmed findings (a prefix of Findings).
func (r *Report) Confirmed() []Finding {
	n := 0
	for _, f := range r.Findings {
		if f.Status != Confirmed {
			break
		}
		n++
	}
	return r.Findings[:n]
}

type pair struct{ a, b constraints.SAPRef }

type siteKey struct {
	v    string // global name: the user-facing grouping identity
	a, b site
}

type site struct {
	pos   minic.Pos
	write bool
}

func siteOf(s *symexec.SAP) site {
	return site{pos: s.Pos, write: s.Kind == symexec.SAPWrite}
}

func siteLess(a, b site) bool {
	if a.pos.Line != b.pos.Line {
		return a.pos.Line < b.pos.Line
	}
	if a.pos.Col != b.pos.Col {
		return a.pos.Col < b.pos.Col
	}
	return !a.write && b.write
}

type analyzer struct {
	sys    *constraints.System
	static *staticanalysis.Result
	opts   Options

	recorded    []constraints.SAPRef // validated recorded total order, or nil
	recordedPos []int                // SAPRef → position in recorded
	recordedW   *constraints.Witness
	moveBuf     []constraints.SAPRef
	reach       *reachability
	dynSites    map[siteKey]bool // site pairs with a dynamic group

	sess     *cnfsolver.Session
	sessErr  error
	deadline time.Time

	counters Counters
}

// Analyze runs the predictive race analysis over one recording's
// constraint system. static supplies the first-stage pair filter (nil
// disables it); times maps each SAPRef to its recorded logical timestamp
// (from explain.AlignRecorded; nil or incomplete disables the
// perturbation fast path).
func Analyze(sys *constraints.System, static *staticanalysis.Result, times []int64, opts Options) (*Report, error) {
	if sys == nil {
		return nil, fmt.Errorf("races: nil constraint system")
	}
	opts.fill()
	a := &analyzer{sys: sys, static: static, opts: opts}
	if opts.Deadline > 0 {
		a.deadline = time.Now().Add(opts.Deadline)
	}
	if !opts.NoPerturb {
		a.buildRecorded(times)
	}
	groups := a.enumerate()
	rep := &Report{Sys: sys, Times: times}
	for _, g := range groups {
		rep.Findings = append(rep.Findings, a.decide(g))
	}
	rep.Findings = append(rep.Findings, a.staticOnly()...)
	sortFindings(rep.Findings)
	for _, f := range rep.Findings {
		switch f.Status {
		case Confirmed:
			a.counters.Confirmed++
		case Refuted:
			a.counters.Refuted++
		case StaticOnly:
			a.counters.StaticOnly++
		default:
			a.counters.Unknown++
		}
	}
	rep.Counters = a.counters
	return rep, nil
}

// buildRecorded reconstructs and validates the recorded total order from
// the alignment times. Any SAP without a timestamp (demoted access,
// never-scheduled thread) disables the fast path: a partial order cannot
// be validated as a schedule.
func (a *analyzer) buildRecorded(times []int64) {
	n := len(a.sys.SAPs)
	if len(times) != n {
		return
	}
	order := make([]constraints.SAPRef, n)
	for i := range order {
		if times[i] == NoTime {
			return
		}
		order[i] = constraints.SAPRef(i)
	}
	sort.Slice(order, func(i, j int) bool {
		ti, tj := times[order[i]], times[order[j]]
		if ti != tj {
			return ti < tj
		}
		return order[i] < order[j]
	})
	w, err := a.sys.ValidateSchedule(order)
	if err != nil {
		return
	}
	pos := make([]int, n)
	for i, r := range order {
		pos[r] = i
	}
	a.recorded, a.recordedPos, a.recordedW = order, pos, w
}

type group struct {
	key   siteKey
	pairs []pair
}

// enumerate walks every conflicting SAP pair, applies the static filters,
// and groups the survivors by source-site pair.
func (a *analyzer) enumerate() []group {
	sys := a.sys
	byVar := map[int][]constraints.SAPRef{}
	for i, s := range sys.SAPs {
		if s.Kind.IsMemory() {
			byVar[int(s.Var)] = append(byVar[int(s.Var)], constraints.SAPRef(i))
		}
	}
	vars := make([]int, 0, len(byVar))
	for v := range byVar {
		vars = append(vars, v)
	}
	sort.Ints(vars)

	a.reach = buildReach(sys)
	a.dynSites = map[siteKey]bool{}
	groups := map[siteKey]*group{}
	var order []siteKey
	for _, v := range vars {
		refs := byVar[v]
		name := sys.An.Prog.Globals[v].Name
		for i := 0; i < len(refs); i++ {
			for j := i + 1; j < len(refs); j++ {
				x, y := sys.SAP(refs[i]), sys.SAP(refs[j])
				if x.Thread == y.Thread {
					continue
				}
				if x.Kind != symexec.SAPWrite && y.Kind != symexec.SAPWrite {
					continue
				}
				if !maybeSameAddr(x, y) {
					continue
				}
				a.counters.Pairs++
				if a.pruned(x, y, refs[i], refs[j]) {
					continue
				}
				sx, sy := siteOf(x), siteOf(y)
				p := pair{refs[i], refs[j]}
				if siteLess(sy, sx) {
					sx, sy = sy, sx
					p.a, p.b = p.b, p.a
				}
				key := siteKey{v: name, a: sx, b: sy}
				a.dynSites[key] = true
				g, ok := groups[key]
				if !ok {
					g = &group{key: key}
					groups[key] = g
					order = append(order, key)
				}
				g.pairs = append(g.pairs, p)
			}
		}
	}
	out := make([]group, 0, len(order))
	for _, key := range order {
		g := groups[key]
		a.sortPairs(g.pairs)
		out = append(out, *g)
	}
	return out
}

// pruned applies the cheap first-stage filters, charging the per-reason
// counters. All three are sound: a common must-held lock, a static
// happens-before proof, or a hard-edge order each hold in every feasible
// schedule of the system.
func (a *analyzer) pruned(x, y *symexec.SAP, rx, ry constraints.SAPRef) bool {
	if !x.MustLocks.Inter(y.MustLocks).Empty() {
		a.counters.PrunedMutex++
		return true
	}
	if a.static != nil {
		switch a.static.PairVerdictAt(x.Var, x.Pos, x.Kind == symexec.SAPWrite, y.Pos, y.Kind == symexec.SAPWrite) {
		case staticanalysis.PairLockExcluded:
			a.counters.PrunedMutex++
			return true
		case staticanalysis.PairOrdered:
			a.counters.PrunedStatic++
			return true
		}
	}
	if a.reach != nil && (a.reach.ordered(rx, ry) || a.reach.ordered(ry, rx)) {
		// Every hard-edge path between two memory SAPs of different
		// threads crosses a cross-thread edge between two sync SAPs, so
		// an ordered pair always has synchronization between its accesses
		// — in every feasible schedule, not just the recorded one.
		a.counters.PrunedStatic++
		return true
	}
	return false
}

// sortPairs orders a group's pairs by how promising they are for the fast
// path: smallest recorded gap first (an already-adjacent pair confirms
// with zero extra work), then by ref for determinism.
func (a *analyzer) sortPairs(ps []pair) {
	gap := func(p pair) int {
		if a.recordedPos == nil {
			return 0
		}
		d := a.recordedPos[p.a] - a.recordedPos[p.b]
		if d < 0 {
			d = -d
		}
		return d
	}
	sort.Slice(ps, func(i, j int) bool {
		gi, gj := gap(ps[i]), gap(ps[j])
		if gi != gj {
			return gi < gj
		}
		if ps[i].a != ps[j].a {
			return ps[i].a < ps[j].a
		}
		return ps[i].b < ps[j].b
	})
}

func (a *analyzer) interrupted() bool {
	if a.opts.Ctx != nil {
		select {
		case <-a.opts.Ctx.Done():
			return true
		default:
		}
	}
	return !a.deadline.IsZero() && time.Now().After(a.deadline)
}

// decide resolves one site group: perturbation fast path first, then the
// shared CNF session. A site is refuted only when every one of its SAP
// pairs was refuted by the solver; any unresolved pair degrades the
// verdict to unknown.
func (a *analyzer) decide(g group) Finding {
	f := Finding{Var: g.key.v, Pairs: len(g.pairs)}
	f.A, f.B = a.accessPair(g.pairs[0])

	budget := a.opts.MaxPairsPerSite
	if budget > len(g.pairs) {
		budget = len(g.pairs)
	}
	var solverQueue []pair
	for _, p := range g.pairs[:budget] {
		if a.interrupted() {
			f.Status, f.How = Unknown, "deadline"
			return f
		}
		if w, how := a.fastWitness(p); w != nil {
			f.Status, f.How, f.Witness = Confirmed, how, w
			f.A, f.B = a.accessPair(p)
			return f
		}
		solverQueue = append(solverQueue, p)
	}

	if a.opts.NoSolver {
		f.Status, f.How = Unknown, "no-solver"
		return f
	}
	refuted := 0
	for _, p := range solverQueue {
		if a.interrupted() {
			f.Status, f.How = Unknown, "deadline"
			return f
		}
		if a.counters.SolverCalls >= a.opts.MaxSolverCalls {
			f.Status, f.How = Unknown, "solver-budget"
			return f
		}
		w, verdict := a.solvePair(p)
		switch verdict {
		case Confirmed:
			f.Status, f.How, f.Witness = Confirmed, "solver", w
			f.A, f.B = a.accessPair(p)
			return f
		case Refuted:
			refuted++
		default:
			f.Status, f.How = Unknown, a.solveUnknownReason()
			return f
		}
	}
	if refuted == len(g.pairs) {
		f.Status, f.How = Refuted, "solver"
		return f
	}
	// Some pairs were beyond the per-site budget: refuting a subset
	// proves nothing about the rest.
	f.Status, f.How = Unknown, "pair-budget"
	return f
}

// fastWitness tries to confirm a pair from the recorded order: as-is when
// no synchronization falls between the accesses, else by perturbing the
// recorded schedule — a single access moved next to its partner, or the
// whole window between them split around the pair by hard-order
// dependence — and re-validating. All candidates preserve the recorded
// orientation; the solver covers reversals.
func (a *analyzer) fastWitness(p pair) (*constraints.Witness, string) {
	if a.recorded == nil {
		return nil, ""
	}
	ra, rb := p.a, p.b
	i, j := a.recordedPos[ra], a.recordedPos[rb]
	if i > j {
		i, j = j, i
		ra, rb = rb, ra
	}
	if a.syncFree(i, j) {
		return a.recordedW, "recorded"
	}
	// Move the later access to just after the earlier one…
	if w := a.validateMove(j, i+1); w != nil {
		return w, "perturbed"
	}
	// …or the earlier access to just before the later one.
	if w := a.validateMove(i, j-1); w != nil {
		return w, "perturbed"
	}
	// …or evacuate the whole window: events the pair's first access
	// hard-orders go after the pair, everything else before it.
	if w := a.blockMove(ra, rb, i, j); w != nil {
		return w, "perturbed"
	}
	return nil, ""
}

// syncFree reports whether no synchronization SAP sits strictly between
// recorded positions i and j. Intervening memory accesses are fine — the
// pair is still happens-before-unordered.
func (a *analyzer) syncFree(i, j int) bool {
	for k := i + 1; k < j; k++ {
		if a.sys.SAP(a.recorded[k]).Kind.IsSync() {
			return false
		}
	}
	return true
}

// blockMove builds the window-split candidate: recorded order with every
// event between the pair moved out — events hard-ordered after ra go
// right after rb, the rest right before ra. Hard edges cannot break: a
// window event hard-ordered both after ra and before rb would make the
// pair itself hard-ordered, which pruning already excluded.
func (a *analyzer) blockMove(ra, rb constraints.SAPRef, i, j int) *constraints.Witness {
	if a.reach == nil {
		return nil
	}
	n := len(a.recorded)
	if cap(a.moveBuf) < n {
		a.moveBuf = make([]constraints.SAPRef, n)
	}
	buf := a.moveBuf[:0]
	buf = append(buf, a.recorded[:i]...)
	for k := i + 1; k < j; k++ {
		if !a.reach.ordered(ra, a.recorded[k]) {
			buf = append(buf, a.recorded[k])
		}
	}
	buf = append(buf, ra, rb)
	for k := i + 1; k < j; k++ {
		if a.reach.ordered(ra, a.recorded[k]) {
			buf = append(buf, a.recorded[k])
		}
	}
	buf = append(buf, a.recorded[j+1:]...)
	w, err := a.sys.ValidateSchedule(buf)
	if err != nil {
		return nil
	}
	return w
}

// validateMove re-validates the recorded order with the element at
// position from moved to position to (indices in the resulting slice).
func (a *analyzer) validateMove(from, to int) *constraints.Witness {
	n := len(a.recorded)
	if cap(a.moveBuf) < n {
		a.moveBuf = make([]constraints.SAPRef, n)
	}
	buf := a.moveBuf[:0]
	moved := a.recorded[from]
	for i, r := range a.recorded {
		if i != from {
			buf = append(buf, r)
		}
	}
	buf = append(buf, 0)
	copy(buf[to+1:], buf[to:n-1])
	buf[to] = moved
	w, err := a.sys.ValidateSchedule(buf)
	if err != nil {
		return nil
	}
	return w
}

// solvePair runs one adjacency query on the shared CNF session.
func (a *analyzer) solvePair(p pair) (*constraints.Witness, Status) {
	if a.sess == nil && a.sessErr == nil {
		opts := cnfsolver.Options{
			MaxTheoryRounds: a.opts.SolverRounds,
			Ctx:             a.opts.Ctx,
		}
		if !a.deadline.IsZero() {
			opts.Deadline = time.Until(a.deadline)
			if opts.Deadline <= 0 {
				opts.Deadline = time.Nanosecond
			}
		}
		sess, err := cnfsolver.NewSession(a.sys, opts)
		if err != nil {
			a.sessErr = err
		} else {
			a.sess = sess
			a.counters.Sessions++
		}
	}
	if a.sess == nil {
		return nil, Unknown
	}
	// One session, many pairs: retire the previous pair's adjacency group
	// (and any blocking clauses), arm this pair's, and re-enter. Learnt
	// clauses and theory lemmas persist — they are adjacency-independent
	// facts about the system.
	a.sess.RetractBlocks()
	a.sess.AssumeAdjacent(p.a, p.b)
	a.counters.SolverCalls++
	sol, _, err := a.sess.Solve()
	if err == nil {
		return sol.Witness, Confirmed
	}
	var us *cnfsolver.Unsat
	if errors.As(err, &us) {
		return nil, Refuted
	}
	return nil, Unknown // interrupted or round budget: the session stays usable
}

func (a *analyzer) solveUnknownReason() string {
	if a.sessErr != nil {
		return "solver-unavailable"
	}
	return "solver-rounds"
}

func (a *analyzer) accessPair(p pair) (Access, Access) {
	mk := func(r constraints.SAPRef) Access {
		s := a.sys.SAP(r)
		return Access{SAP: r, Thread: s.Thread, Write: s.Kind == symexec.SAPWrite, Pos: s.Pos}
	}
	return mk(p.a), mk(p.b)
}

// staticOnly surfaces the static analysis races whose site pair never
// formed a dynamic group: the recorded execution ran at most one side of
// the pair (or touched disjoint concrete indices), so the predictive pass
// has no occurrence to decide. They are reported distinctly — a potential
// race this recording could not witness, not a confirmed one.
func (a *analyzer) staticOnly() []Finding {
	if a.static == nil {
		return nil
	}
	var out []Finding
	seen := map[siteKey]bool{}
	for _, rc := range a.static.Races {
		sa := site{pos: rc.A.Pos, write: rc.A.Write}
		sb := site{pos: rc.B.Pos, write: rc.B.Write}
		if siteLess(sb, sa) {
			sa, sb = sb, sa
		}
		key := siteKey{v: a.sys.An.Prog.Globals[rc.Global].Name, a: sa, b: sb}
		if a.dynSites[key] || seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Finding{
			Var:    key.v,
			A:      Access{SAP: -1, Thread: -1, Write: sa.write, Pos: sa.pos},
			B:      Access{SAP: -1, Thread: -1, Write: sb.write, Pos: sb.pos},
			Status: StaticOnly,
			How:    "not-recorded",
		})
	}
	return out
}

func maybeSameAddr(a, b *symexec.SAP) bool {
	if a.Var != b.Var {
		return false
	}
	if a.Addr != symexec.NoAddr && b.Addr != symexec.NoAddr {
		return a.Addr == b.Addr
	}
	return true
}

func statusRank(s Status) int {
	switch s {
	case Confirmed:
		return 0
	case StaticOnly:
		return 1
	case Refuted:
		return 2
	}
	return 3
}

func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if statusRank(a.Status) != statusRank(b.Status) {
			return statusRank(a.Status) < statusRank(b.Status)
		}
		if a.Var != b.Var {
			return a.Var < b.Var
		}
		if a.A.Pos != b.A.Pos {
			return posLess(a.A.Pos, b.A.Pos)
		}
		return posLess(a.B.Pos, b.B.Pos)
	})
}

func posLess(a, b minic.Pos) bool {
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col < b.Col
}

// reachability is the transitive closure of program order plus the
// system's hard edges, as per-SAP bitsets.
type reachability struct {
	n     int
	words int
	bits  []uint64
}

func (r *reachability) set(a, b int)      { r.bits[a*r.words+b/64] |= 1 << (b % 64) }
func (r *reachability) has(a, b int) bool { return r.bits[a*r.words+b/64]&(1<<(b%64)) != 0 }
func (r *reachability) or(dst, src int) {
	d := r.bits[dst*r.words : (dst+1)*r.words]
	s := r.bits[src*r.words : (src+1)*r.words]
	for i := range d {
		d[i] |= s[i]
	}
}

// ordered reports a →* b.
func (r *reachability) ordered(a, b constraints.SAPRef) bool { return r.has(int(a), int(b)) }

// buildReach computes reachability over program order and hard edges with
// one reverse-topological sweep. A cyclic graph (impossible for a
// consistent recording) disables the filter rather than mis-pruning.
func buildReach(sys *constraints.System) *reachability {
	n := len(sys.SAPs)
	if n == 0 {
		return nil
	}
	succs := make([][]int32, n)
	indeg := make([]int, n)
	addEdge := func(a, b int) {
		succs[a] = append(succs[a], int32(b))
		indeg[b]++
	}
	for _, refs := range sys.Threads {
		for k := 0; k+1 < len(refs); k++ {
			addEdge(int(refs[k]), int(refs[k+1]))
		}
	}
	for _, e := range sys.HardEdges {
		addEdge(int(e[0]), int(e[1]))
	}
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	topo := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		topo = append(topo, v)
		for _, s := range succs[v] {
			if indeg[s]--; indeg[s] == 0 {
				queue = append(queue, int(s))
			}
		}
	}
	if len(topo) != n {
		return nil
	}
	r := &reachability{n: n, words: (n + 63) / 64}
	r.bits = make([]uint64, n*r.words)
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		for _, s := range succs[v] {
			r.set(v, int(s))
			r.or(v, int(s))
		}
	}
	return r
}
