package races

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// Schema is the versioned identifier of the JSON report format.
const Schema = "clap-races/1"

// Render formats the report as the human-readable listing of `clap races`.
// The output is deterministic: findings are pre-sorted and every line is a
// pure function of the report.
func (r *Report) Render() string {
	var b strings.Builder
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "%s: %s: %s vs %s", f.Status, f.Var, accessString(f.A), accessString(f.B))
		switch {
		case f.Status == Confirmed && f.Witness != nil:
			fmt.Fprintf(&b, " [%s witness: %d SAPs, %d preemptions]",
				f.How, len(f.Witness.Order), f.Witness.Preemptions)
		case f.How != "":
			fmt.Fprintf(&b, " [%s]", f.How)
		}
		if f.Pairs > 1 {
			fmt.Fprintf(&b, " (%d pairs)", f.Pairs)
		}
		b.WriteByte('\n')
	}
	c := r.Counters
	if c.Confirmed == 0 {
		b.WriteString("summary: no races confirmed")
	} else {
		fmt.Fprintf(&b, "summary: %d race%s confirmed", c.Confirmed, plural(c.Confirmed))
	}
	fmt.Fprintf(&b, ", %d refuted, %d unknown, %d static-only; %d pairs (%d pruned static, %d pruned mutex); %d solver calls, %d sessions\n",
		c.Refuted, c.Unknown, c.StaticOnly, c.Pairs, c.PrunedStatic, c.PrunedMutex, c.SolverCalls, c.Sessions)
	return b.String()
}

func accessString(a Access) string {
	kind := "read"
	if a.Write {
		kind = "write"
	}
	if a.Thread < 0 {
		// Static-only sites have no witnessing dynamic access.
		return fmt.Sprintf("%s @%s", kind, a.Pos)
	}
	return fmt.Sprintf("%s t%d@%s", kind, a.Thread, a.Pos)
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

// Meta labels a JSON report with the analyzed program's identity.
type Meta struct {
	Program string `json:"program,omitempty"`
	Model   string `json:"model,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
}

type jsonReport struct {
	Schema   string        `json:"schema"`
	Meta     Meta          `json:"meta"`
	Findings []jsonFinding `json:"findings"`
	Counters jsonCounters  `json:"counters"`
}

type jsonFinding struct {
	Var     string       `json:"var"`
	Status  string       `json:"status"`
	How     string       `json:"how,omitempty"`
	A       jsonAccess   `json:"a"`
	B       jsonAccess   `json:"b"`
	Pairs   int          `json:"pairs"`
	Witness *jsonWitness `json:"witness,omitempty"`
}

type jsonAccess struct {
	Kind   string `json:"kind"`
	Thread int64  `json:"thread"`
	Pos    string `json:"pos"`
}

type jsonWitness struct {
	SAPs        int `json:"saps"`
	Preemptions int `json:"preemptions"`
}

type jsonCounters struct {
	Counters
	SessionReuse int `json:"session_reuse"`
}

// MarshalReport renders the report in the stable clap-races/1 schema.
func (r *Report) MarshalReport(meta Meta) ([]byte, error) {
	out := jsonReport{
		Schema:   Schema,
		Meta:     meta,
		Findings: []jsonFinding{},
		Counters: jsonCounters{Counters: r.Counters, SessionReuse: r.Counters.SessionReuse()},
	}
	for _, f := range r.Findings {
		jf := jsonFinding{
			Var:    f.Var,
			Status: f.Status.String(),
			How:    f.How,
			A:      jsonAccessOf(f.A),
			B:      jsonAccessOf(f.B),
			Pairs:  f.Pairs,
		}
		if f.Witness != nil {
			jf.Witness = &jsonWitness{SAPs: len(f.Witness.Order), Preemptions: f.Witness.Preemptions}
		}
		out.Findings = append(out.Findings, jf)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func jsonAccessOf(a Access) jsonAccess {
	kind := "read"
	if a.Write {
		kind = "write"
	}
	return jsonAccess{Kind: kind, Thread: int64(a.Thread), Pos: a.Pos.String()}
}
