package ballarus

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ir"
)

func mustCompile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := ir.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mainPaths(t *testing.T, src string) *FuncPaths {
	t.Helper()
	p := mustCompile(t, src)
	fp, err := Compute(p.Funcs[p.MainID])
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestStraightLineSinglePath(t *testing.T) {
	fp := mainPaths(t, `
int x;
func main() {
	x = 1;
	x = 2;
}
`)
	if fp.NumPaths != 1 {
		t.Fatalf("straight-line function must have 1 path, got %d", fp.NumPaths)
	}
	seg, err := fp.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	if !seg.Returns || len(seg.Blocks) != 1 {
		t.Fatalf("segment = %+v, want single returning block", seg)
	}
}

func TestIfElseTwoPaths(t *testing.T) {
	fp := mainPaths(t, `
int x;
func main() {
	if (x > 0) { x = 1; } else { x = 2; }
}
`)
	if fp.NumPaths != 2 {
		t.Fatalf("if/else must have 2 paths, got %d", fp.NumPaths)
	}
	seen := map[string]bool{}
	for id := uint64(0); id < 2; id++ {
		seg, err := fp.Decode(id)
		if err != nil {
			t.Fatal(err)
		}
		if !seg.Returns {
			t.Errorf("path %d must return", id)
		}
		seen[fmt.Sprint(seg.Blocks)] = true
	}
	if len(seen) != 2 {
		t.Fatalf("the two paths must decode to distinct block sequences, got %v", seen)
	}
}

func TestDiamondChainPathCount(t *testing.T) {
	// Three sequential if/else diamonds: 2^3 = 8 paths.
	fp := mainPaths(t, `
int x;
func main() {
	if (x > 0) { x = 1; } else { x = 2; }
	if (x > 1) { x = 3; } else { x = 4; }
	if (x > 2) { x = 5; } else { x = 6; }
}
`)
	if fp.NumPaths != 8 {
		t.Fatalf("3 diamonds must have 8 paths, got %d", fp.NumPaths)
	}
	// All ids decode uniquely.
	seen := map[string]bool{}
	for id := uint64(0); id < fp.NumPaths; id++ {
		seg, err := fp.Decode(id)
		if err != nil {
			t.Fatalf("decode %d: %v", id, err)
		}
		key := fmt.Sprint(seg.Blocks)
		if seen[key] {
			t.Fatalf("duplicate decode for id %d: %v", id, seg.Blocks)
		}
		seen[key] = true
	}
}

func TestLoopSegments(t *testing.T) {
	fp := mainPaths(t, `
int x;
func main() {
	int i = 0;
	while (i < 3) {
		i = i + 1;
	}
	x = i;
}
`)
	// Segments: entry→head→body (cut by back edge), head→body (re-entry,
	// cut), and head→end→return (re-entry, returns). NumPaths counts all.
	if fp.NumPaths < 3 {
		t.Fatalf("loop function must have >= 3 segment paths, got %d", fp.NumPaths)
	}
	if len(fp.Back) != 1 {
		t.Fatalf("one back edge expected, got %d", len(fp.Back))
	}
}

func TestDecodeRejectsOutOfRange(t *testing.T) {
	fp := mainPaths(t, `
int x;
func main() { x = 1; }
`)
	if _, err := fp.Decode(fp.NumPaths); err == nil {
		t.Fatal("decode past NumPaths must fail")
	}
}

// walkResult is the ground truth of a random CFG walk.
type walkResult struct {
	blocks   []ir.BlockID // every block entered, in order
	segments []uint64     // emitted complete segment ids
	partial  bool         // walk cut before returning
	finalSum uint64       // partial sum if cut, else final path id
}

// randomWalk follows fn's CFG from the entry, choosing branch arms with r,
// for at most maxSteps blocks, recording Tracker emissions.
func randomWalk(fn *ir.Func, fp *FuncPaths, r *rand.Rand, maxSteps int) walkResult {
	var res walkResult
	tr := NewTracker(fp)
	cur := fn.Entry
	res.blocks = append(res.blocks, cur.ID)
	for step := 0; ; step++ {
		switch term := cur.Term.(type) {
		case *ir.Return:
			res.segments = append(res.segments, tr.Return(cur.ID))
			res.finalSum = res.segments[len(res.segments)-1]
			return res
		case *ir.Jump, *ir.Branch:
			var next *ir.Block
			if j, ok := term.(*ir.Jump); ok {
				next = j.Target
			} else {
				b := term.(*ir.Branch)
				if r.Intn(2) == 0 {
					next = b.Then
				} else {
					next = b.Else
				}
			}
			if step >= maxSteps {
				res.partial = true
				res.finalSum = tr.PartialSum()
				return res
			}
			if id, emit := tr.TakeEdge(cur.ID, next.ID); emit {
				res.segments = append(res.segments, id)
			}
			cur = next
			res.blocks = append(res.blocks, cur.ID)
		}
	}
}

// reconstruct decodes the emitted segments (plus the partial tail) and
// concatenates their block sequences.
func reconstruct(t *testing.T, fp *FuncPaths, res walkResult) []ir.BlockID {
	t.Helper()
	var blocks []ir.BlockID
	for _, id := range res.segments {
		seg, err := fp.Decode(id)
		if err != nil {
			t.Fatalf("decode %d: %v", id, err)
		}
		blocks = append(blocks, seg.Blocks...)
	}
	if res.partial {
		seg, err := fp.DecodePartial(res.finalSum)
		if err != nil {
			t.Fatalf("decode partial %d: %v", res.finalSum, err)
		}
		blocks = append(blocks, seg.Blocks...)
	}
	return blocks
}

// randProgram generates a random structured program: nested ifs and loops
// with bounded depth. The data semantics are irrelevant; only the CFG shape
// matters for path profiling.
func randProgram(r *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("int x;\nfunc main() {\n")
	var gen func(depth int)
	gen = func(depth int) {
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			switch k := r.Intn(6); {
			case k <= 2 || depth >= 3:
				fmt.Fprintf(&sb, "x = x + %d;\n", r.Intn(10))
			case k == 3:
				sb.WriteString("if (x > 1) {\n")
				gen(depth + 1)
				sb.WriteString("} else {\n")
				gen(depth + 1)
				sb.WriteString("}\n")
			case k == 4:
				sb.WriteString("if (x > 2) {\n")
				gen(depth + 1)
				sb.WriteString("}\n")
			default:
				sb.WriteString("while (x < 5) {\n")
				gen(depth + 1)
				sb.WriteString("x = x + 1;\n}\n")
			}
		}
	}
	gen(0)
	sb.WriteString("}\n")
	return sb.String()
}

// TestPropertyDecodeRoundTrip is the core Ball–Larus correctness property:
// for random structured CFGs and random walks, decoding the emitted
// segment ids reconstructs exactly the executed block sequence; for walks
// cut mid-segment, the reconstruction has the executed sequence as a
// prefix.
func TestPropertyDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		src := randProgram(r)
		prog, err := ir.CompileSource(src)
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		fn := prog.Funcs[prog.MainID]
		fp, err := Compute(fn)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		maxSteps := 1 + r.Intn(60)
		res := randomWalk(fn, fp, r, maxSteps)
		got := reconstruct(t, fp, res)
		if res.partial {
			if len(got) < len(res.blocks) {
				t.Fatalf("trial %d: partial decode shorter than walk: got %v, walked %v\n%s",
					trial, got, res.blocks, fn.Dump())
			}
			got = got[:len(res.blocks)]
		}
		if fmt.Sprint(got) != fmt.Sprint(res.blocks) {
			t.Fatalf("trial %d: decode mismatch\n got: %v\nwant: %v\nsegments=%v partial=%v\n%s\nsource:\n%s",
				trial, got, res.blocks, res.segments, res.partial, fn.Dump(), src)
		}
	}
}

// TestPropertyPathIDsDense checks that for random loop-free programs every
// id in [0, NumPaths) decodes and distinct ids give distinct paths.
func TestPropertyPathIDsDense(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		var sb strings.Builder
		sb.WriteString("int x;\nfunc main() {\n")
		n := 1 + r.Intn(4)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				fmt.Fprintf(&sb, "if (x > %d) { x = %d; } else { x = %d; }\n", i, i, i+1)
			} else {
				fmt.Fprintf(&sb, "if (x < %d) { x = %d; }\n", i, i)
			}
		}
		sb.WriteString("}\n")
		prog, err := ir.CompileSource(sb.String())
		if err != nil {
			t.Fatal(err)
		}
		fp, err := Compute(prog.Funcs[prog.MainID])
		if err != nil {
			t.Fatal(err)
		}
		if fp.NumPaths > 1<<16 {
			continue
		}
		seen := map[string]bool{}
		for id := uint64(0); id < fp.NumPaths; id++ {
			seg, err := fp.Decode(id)
			if err != nil {
				t.Fatalf("trial %d id %d: %v", trial, id, err)
			}
			if !seg.Returns {
				t.Fatalf("trial %d: loop-free path %d must return", trial, id)
			}
			key := fmt.Sprint(seg.Blocks)
			if seen[key] {
				t.Fatalf("trial %d: ids not unique at %d", trial, id)
			}
			seen[key] = true
		}
	}
}

func TestProgramPaths(t *testing.T) {
	prog := mustCompile(t, `
int x;
func helper(a) { x = a; }
func main() { helper(3); }
`)
	fps, err := ProgramPaths(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(fps) != 2 {
		t.Fatalf("per-function paths = %d, want 2", len(fps))
	}
	for i, fp := range fps {
		if fp.Fn != prog.Funcs[i] {
			t.Fatal("ProgramPaths order must match prog.Funcs")
		}
	}
}

func TestLoopAtFunctionStart(t *testing.T) {
	// The loop head is the first "real" work; entry still precedes it, so
	// back-edge targets are never the entry block.
	fp := mainPaths(t, `
int x;
func main() {
	while (x < 10) {
		x = x + 1;
	}
}
`)
	r := rand.New(rand.NewSource(3))
	res := randomWalk(fp.Fn, fp, r, 40)
	got := reconstruct(t, fp, res)
	if res.partial {
		got = got[:len(res.blocks)]
	}
	if fmt.Sprint(got) != fmt.Sprint(res.blocks) {
		t.Fatalf("decode mismatch: got %v want %v", got, res.blocks)
	}
}
