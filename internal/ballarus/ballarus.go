// Package ballarus implements Ball–Larus path profiling over the IR's
// control-flow graphs.
//
// CLAP's only runtime recording is the thread-local execution path, and the
// paper collects it with "an extension of the classical Ball-Larus
// algorithm": the whole path is a sequence of segments, each a BL path; a
// new segment starts when an intra-procedural path is re-entered (a back
// edge) and function entries/exits demarcate segments of different
// activations.
//
// This package computes, per function:
//
//   - the BL path numbering of the acyclic CFG (back edges replaced by the
//     standard surrogate ENTRY→target and source→EXIT edges),
//   - the runtime actions the VM recorder applies per CFG edge (increment;
//     or, on a back edge, emit-and-reset),
//   - a decoder that maps a recorded path id back to the exact basic-block
//     sequence, including prefix decoding for the partial segment that is
//     in flight when the failure fires.
package ballarus

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// exitNode is the virtual EXIT node id used in the BL DAG; it equals
// len(fn.Blocks).
type nodeID int32

// dagEdge is one edge of the acyclic Ball–Larus DAG.
type dagEdge struct {
	from, to nodeID
	val      uint64
	// surrogate marks edges introduced for back-edge removal. An edge
	// from ENTRY is a segment re-entry point; an edge to EXIT is a segment
	// cut at a back-edge source.
	surrogate bool
}

// BackEdgeAction tells the recorder what to do when a back edge is taken:
// emit the current path sum plus EmitAdd as a completed segment, then reset
// the path sum to ResetTo.
type BackEdgeAction struct {
	EmitAdd uint64
	ResetTo uint64
}

// EdgeKey identifies an original CFG edge.
type EdgeKey struct {
	From, To ir.BlockID
}

// FuncPaths is the Ball–Larus numbering for one function.
type FuncPaths struct {
	Fn *ir.Func
	// NumPaths is the number of distinct DAG paths (valid path ids are
	// [0, NumPaths)).
	NumPaths uint64
	// Inc maps forward CFG edges to their path-sum increment.
	Inc map[EdgeKey]uint64
	// Back maps back edges to their emit-and-reset action.
	Back map[EdgeKey]BackEdgeAction
	// ReturnAdd maps a returning block to the increment of its exit edge.
	ReturnAdd map[ir.BlockID]uint64

	edges map[nodeID][]dagEdge // DAG adjacency in decode order
	exit  nodeID

	// acts is the recording fast path: acts[from] lists the outgoing CFG
	// edges' runtime actions, avoiding map lookups on every executed edge
	// (this is the only per-instruction cost CLAP recording adds, so it is
	// kept allocation- and hash-free).
	acts [][]edgeAct
}

// edgeAct is the runtime action of one CFG edge.
type edgeAct struct {
	to      ir.BlockID
	inc     uint64
	back    bool
	emitAdd uint64
	resetTo uint64
}

// Compute numbers the paths of fn. It never fails for well-formed IR, but
// reports an error if the path count overflows uint64 (not reachable with
// realistic functions).
func Compute(fn *ir.Func) (*FuncPaths, error) {
	fp := &FuncPaths{
		Fn:        fn,
		Inc:       map[EdgeKey]uint64{},
		Back:      map[EdgeKey]BackEdgeAction{},
		ReturnAdd: map[ir.BlockID]uint64{},
		edges:     map[nodeID][]dagEdge{},
		exit:      nodeID(len(fn.Blocks)),
	}
	back := fn.BackEdges()
	entry := nodeID(fn.Entry.ID)

	// Build the DAG. Each block's successor list keeps terminator order so
	// decoding is deterministic; back-edge successors are replaced in place
	// by surrogate edges to EXIT, and surrogate re-entry edges from ENTRY
	// are appended sorted by target.
	reentry := map[ir.BlockID]bool{}
	for _, b := range fn.Blocks {
		from := nodeID(b.ID)
		if _, ok := b.Term.(*ir.Return); ok {
			fp.edges[from] = append(fp.edges[from], dagEdge{from: from, to: fp.exit})
			continue
		}
		for _, s := range b.Succs() {
			if back[[2]ir.BlockID{b.ID, s.ID}] {
				fp.edges[from] = append(fp.edges[from], dagEdge{from: from, to: fp.exit, surrogate: true})
				reentry[s.ID] = true
			} else {
				fp.edges[from] = append(fp.edges[from], dagEdge{from: from, to: nodeID(s.ID)})
			}
		}
	}
	var targets []ir.BlockID
	for t := range reentry {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	for _, t := range targets {
		fp.edges[entry] = append(fp.edges[entry], dagEdge{from: entry, to: nodeID(t), surrogate: true})
	}

	// numPaths by reverse topological order (DFS postorder of the DAG).
	numPaths := make(map[nodeID]uint64, len(fn.Blocks)+1)
	numPaths[fp.exit] = 1
	visited := map[nodeID]bool{fp.exit: true}
	var dfs func(n nodeID) error
	dfs = func(n nodeID) error {
		visited[n] = true
		var total uint64
		es := fp.edges[n]
		for i := range es {
			e := &es[i]
			if !visited[e.to] {
				if err := dfs(e.to); err != nil {
					return err
				}
			}
			e.val = total
			prev := total
			total += numPaths[e.to]
			if total < prev {
				return fmt.Errorf("ballarus: path count overflow in %s", fn.Name)
			}
		}
		if len(es) == 0 {
			// A block with no DAG successors can only be EXIT, handled above.
			total = 1
		}
		numPaths[n] = total
		return nil
	}
	if err := dfs(entry); err != nil {
		return nil, err
	}
	fp.NumPaths = numPaths[entry]

	// Derive runtime actions from DAG edge values.
	surrogateToExit := map[nodeID]uint64{}
	surrogateFromEntry := map[nodeID]uint64{}
	for _, es := range fp.edges {
		for _, e := range es {
			if e.surrogate && e.to == fp.exit {
				surrogateToExit[e.from] = e.val
			}
			if e.surrogate && e.from == entry {
				surrogateFromEntry[e.to] = e.val
			}
		}
	}
	fp.acts = make([][]edgeAct, len(fn.Blocks))
	for _, b := range fn.Blocks {
		from := nodeID(b.ID)
		if _, ok := b.Term.(*ir.Return); ok {
			for _, e := range fp.edges[from] {
				if e.to == fp.exit && !e.surrogate {
					fp.ReturnAdd[b.ID] = e.val
				}
			}
			continue
		}
		for _, s := range b.Succs() {
			key := EdgeKey{From: b.ID, To: s.ID}
			if back[[2]ir.BlockID{b.ID, s.ID}] {
				act := BackEdgeAction{
					EmitAdd: surrogateToExit[from],
					ResetTo: surrogateFromEntry[nodeID(s.ID)],
				}
				fp.Back[key] = act
				fp.acts[b.ID] = append(fp.acts[b.ID], edgeAct{
					to: s.ID, back: true, emitAdd: act.EmitAdd, resetTo: act.ResetTo,
				})
			} else {
				for _, e := range fp.edges[from] {
					if e.to == nodeID(s.ID) && !e.surrogate {
						fp.Inc[key] = e.val
						fp.acts[b.ID] = append(fp.acts[b.ID], edgeAct{to: s.ID, inc: e.val})
					}
				}
			}
		}
	}
	return fp, nil
}

// Segment is a decoded BL segment: the block sequence it covers, and
// whether the segment ended by returning from the function (as opposed to
// being cut by a back edge, in which case the next segment of the same
// activation continues at the loop head).
type Segment struct {
	Blocks  []ir.BlockID
	Returns bool
}

// Decode maps a recorded path id back to its segment. Ids must be in
// [0, NumPaths).
func (fp *FuncPaths) Decode(id uint64) (Segment, error) {
	if id >= fp.NumPaths {
		return Segment{}, fmt.Errorf("ballarus: path id %d out of range [0,%d) in %s", id, fp.NumPaths, fp.Fn.Name)
	}
	return fp.walk(id)
}

// DecodePartial decodes the in-flight path sum of a segment that was cut
// short (the thread hit the failure before completing the segment). The
// returned block sequence has the actually-executed blocks as a prefix; it
// may extend past them along zero-valued edges, which is harmless because
// the consumer stops at the failing instruction.
func (fp *FuncPaths) DecodePartial(sum uint64) (Segment, error) {
	if fp.NumPaths > 0 && sum >= fp.NumPaths {
		return Segment{}, fmt.Errorf("ballarus: partial sum %d out of range in %s", sum, fp.Fn.Name)
	}
	return fp.walk(sum)
}

// walk runs the standard BL decode: starting at ENTRY with the remaining
// sum, at each node take the edge with the largest value not exceeding the
// remainder.
func (fp *FuncPaths) walk(id uint64) (Segment, error) {
	entry := nodeID(fp.Fn.Entry.ID)
	var seg Segment
	n := entry
	remaining := id
	first := true
	for n != fp.exit {
		// A DAG path visits each node at most once; anything longer means
		// the edge tables are inconsistent, and erroring out here keeps a
		// corrupt numbering from looping or growing the segment unboundedly.
		if len(seg.Blocks) > len(fp.Fn.Blocks) {
			return Segment{}, fmt.Errorf("ballarus: decode of %d exceeds %d blocks in %s", id, len(fp.Fn.Blocks), fp.Fn.Name)
		}
		es := fp.edges[n]
		if len(es) == 0 {
			return Segment{}, fmt.Errorf("ballarus: stuck at node %d decoding %d in %s", n, id, fp.Fn.Name)
		}
		// Largest val <= remaining; edges store vals as increasing prefix
		// sums in list order, so scan from the back.
		choice := -1
		for i := len(es) - 1; i >= 0; i-- {
			if es[i].val <= remaining {
				choice = i
				break
			}
		}
		if choice < 0 {
			return Segment{}, fmt.Errorf("ballarus: no edge from node %d with val <= %d in %s", n, remaining, fp.Fn.Name)
		}
		e := es[choice]
		remaining -= e.val
		if first {
			// A surrogate first edge means this segment re-enters at a loop
			// head; the real block sequence starts at the target. A real
			// first edge means the segment starts at the entry block itself.
			if e.surrogate && e.from == entry {
				seg.Blocks = append(seg.Blocks, ir.BlockID(e.to))
				n = e.to
				first = false
				continue
			}
			seg.Blocks = append(seg.Blocks, ir.BlockID(entry))
			first = false
			// fall through to record the edge target below
		}
		if e.to == fp.exit {
			seg.Returns = !e.surrogate
			if remaining != 0 {
				return Segment{}, fmt.Errorf("ballarus: leftover %d decoding %d in %s", remaining, id, fp.Fn.Name)
			}
			return seg, nil
		}
		seg.Blocks = append(seg.Blocks, ir.BlockID(e.to))
		n = e.to
	}
	return seg, nil
}

// ProgramPaths computes the numbering for every function of a program,
// indexed by ir.FuncID.
func ProgramPaths(prog *ir.Program) ([]*FuncPaths, error) {
	out := make([]*FuncPaths, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		fp, err := Compute(fn)
		if err != nil {
			return nil, err
		}
		out[i] = fp
	}
	return out, nil
}

// Tracker is the per-activation runtime state of the BL recorder: the
// current path sum and the number of blocks entered in the current segment
// (the latter lets the decoder truncate a partial segment exactly).
// The VM keeps one Tracker per stack frame.
type Tracker struct {
	fp     *FuncPaths
	sum    uint64
	blocks int
}

// NewTracker starts a fresh activation of fp's function, positioned at the
// entry block.
func NewTracker(fp *FuncPaths) *Tracker { return &Tracker{fp: fp, blocks: 1} }

// TakeEdge records traversal of the CFG edge from→to. When the edge is a
// back edge it returns the completed segment's path id and emit=true; the
// tracker resets for the re-entered segment. The lookup scans the block's
// tiny outgoing-edge slice (at most two entries) — no hashing.
func (t *Tracker) TakeEdge(from, to ir.BlockID) (pathID uint64, emit bool) {
	for _, a := range t.fp.acts[from] {
		if a.to != to {
			continue
		}
		if a.back {
			id := t.sum + a.emitAdd
			t.sum = a.resetTo
			t.blocks = 1
			return id, true
		}
		t.sum += a.inc
		t.blocks++
		return 0, false
	}
	// Unknown edge (cannot happen for well-formed IR): count the block and
	// keep the sum unchanged.
	t.blocks++
	return 0, false
}

// Return records the function returning from block b and yields the final
// segment's path id.
func (t *Tracker) Return(b ir.BlockID) uint64 {
	return t.sum + t.fp.ReturnAdd[b]
}

// PartialSum returns the in-flight path sum, used when the execution is cut
// short by the failure.
func (t *Tracker) PartialSum() uint64 { return t.sum }

// PartialBlocks returns the number of blocks entered in the in-flight
// segment; DecodePartial results should be truncated to this length.
func (t *Tracker) PartialBlocks() int { return t.blocks }
